// Tests for the deterministic fault-injection subsystem: the FaultInjector's
// three fault classes in isolation, and the engine-level guarantees —
// default-off configs are bit-inert, fault runs are bit-deterministic at any
// thread count, churn pauses (but never destroys) vehicle state, blackouts
// are attributed to aborts, and chat backoff bounds retry frequency.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/frame.h"
#include "engine/fleet.h"

namespace lbchat::engine {
namespace {

/// A tiny scenario that keeps fault tests fast (mirrors engine_test).
ScenarioConfig tiny_scenario() {
  ScenarioConfig cfg;
  cfg.num_vehicles = 4;
  cfg.collect_duration_s = 60.0;
  cfg.duration_s = 60.0;
  cfg.eval_interval_s = 30.0;
  cfg.eval_frames_per_vehicle = 4;
  cfg.world.num_background_cars = 6;
  cfg.world.num_pedestrians = 10;
  return cfg;
}

/// A do-nothing strategy (local training only).
class LocalOnlyStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "local-only"; }
  void on_tick(FleetSim&) override {}
};

/// Chats continuously: every tick it pairs up idle in-range vehicles and
/// sends one framed model payload, verifying the envelope on delivery — a
/// miniature of what LbChat and the gossip baselines do, without their
/// training machinery, so session/fault mechanics are isolated.
class ChattyStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "chatty"; }

  void on_tick(FleetSim& sim) override {
    for (int a = 0; a < sim.num_vehicles(); ++a) {
      for (int b = a + 1; b < sim.num_vehicles(); ++b) {
        if (!sim.is_idle(a) || !sim.is_idle(b)) continue;
        if (!sim.in_range(a, b) || !sim.cooldown_passed(a, b)) continue;
        PairSession& s = sim.start_session(a, b);
        const std::vector<std::uint8_t> body{1, 2, 3, 4, 5, 6, 7, 8};
        sim.queue_transfer(s, a, bytes_to_send, {StageTag::kModel, a, 0},
                           frame::encode(frame::FrameType::kModel, body));
      }
    }
  }

  void on_transfer_complete(FleetSim& sim, PairSession& s, const StageTag& tag) override {
    const auto dec = frame::decode(s.delivered_payload());
    if (dec.ok()) {
      ++accepted;
      sim.note_pair_success(s.vehicle_a(), s.vehicle_b());
    } else {
      ++rejected;
      ++sim.stats().frames_rejected;
      if (tag.kind == StageTag::kModel) ++sim.stats().model_frames_rejected;
      sim.note_pair_failure(s.vehicle_a(), s.vehicle_b());
    }
    s.close();
  }

  void on_session_aborted(FleetSim& sim, PairSession& s) override {
    if (!s.infrastructure()) sim.note_pair_failure(s.vehicle_a(), s.vehicle_b());
  }

  std::size_t bytes_to_send = 64 * 1024;
  int accepted = 0;
  int rejected = 0;
};

// ---------------------------------------------------------------------------
// FaultInjector unit tests
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DefaultsStayInert) {
  FaultInjector inj{FaultConfig{}, 1, 1000.0, 4};
  EXPECT_FALSE(FaultConfig{}.any_faults());
  for (int t = 1; t <= 200; ++t) {
    inj.advance(0.5 * t, 0.5);
    EXPECT_EQ(inj.active_bursts(), 0);
    EXPECT_EQ(inj.offline_count(), 0);
    EXPECT_TRUE(inj.went_offline().empty());
    EXPECT_EQ(inj.extra_loss(Vec2{0.0, 0.0}, Vec2{500.0, 500.0}), 0.0);
    EXPECT_FALSE(inj.corrupt_delivery(90.0, 180.0));
  }
}

TEST(FaultInjectorTest, BurstsSpawnAndExpire) {
  FaultConfig cfg;
  cfg.burst_rate_per_min = 30.0;
  cfg.burst_duration_s = 4.0;
  cfg.burst_radius_m = 200.0;
  cfg.burst_extra_loss = 0.6;
  FaultInjector inj{cfg, 7, 1000.0, 4};
  int max_active = 0;
  bool saw_expiry = false;
  int prev = 0;
  for (int t = 1; t <= 240; ++t) {
    inj.advance(0.5 * t, 0.5);
    max_active = std::max(max_active, inj.active_bursts());
    if (inj.active_bursts() < prev) saw_expiry = true;
    prev = inj.active_bursts();
    // extra_loss is the max over covering bursts, clamped to the config.
    const double loss = inj.extra_loss(Vec2{500.0, 500.0}, Vec2{500.0, 500.0});
    EXPECT_GE(loss, 0.0);
    EXPECT_LE(loss, cfg.burst_extra_loss);
  }
  EXPECT_GT(max_active, 0);
  EXPECT_TRUE(saw_expiry);
}

TEST(FaultInjectorTest, ChurnTogglesOfflineAndRecovers) {
  FaultConfig cfg;
  cfg.churn_rate_per_min = 30.0;
  cfg.churn_offline_mean_s = 5.0;
  const int n = 8;
  FaultInjector inj{cfg, 11, 1000.0, n};
  int drop_events = 0;
  int recoveries = 0;
  std::vector<bool> was_offline(n, false);
  for (int t = 1; t <= 240; ++t) {
    inj.advance(0.5 * t, 0.5);
    drop_events += static_cast<int>(inj.went_offline().size());
    int offline_now = 0;
    for (int v = 0; v < n; ++v) {
      if (inj.offline(v)) ++offline_now;
      if (was_offline[v] && !inj.offline(v)) ++recoveries;
      was_offline[v] = inj.offline(v);
    }
    EXPECT_EQ(offline_now, inj.offline_count());
    for (const int v : inj.went_offline()) EXPECT_TRUE(inj.offline(v));
  }
  EXPECT_GT(drop_events, 0);
  EXPECT_GT(recoveries, 0);
}

TEST(FaultInjectorTest, CorruptDeliveryScalesWithDistance) {
  {
    FaultConfig cfg;
    cfg.corrupt_prob_near = 0.0;
    cfg.corrupt_prob_far = 1.0;
    FaultInjector inj{cfg, 3, 1000.0, 2};
    for (int i = 0; i < 200; ++i) {
      EXPECT_FALSE(inj.corrupt_delivery(0.0, 180.0));
      EXPECT_TRUE(inj.corrupt_delivery(180.0, 180.0));
    }
  }
  {
    FaultConfig cfg;
    cfg.corrupt_prob_near = 0.1;
    cfg.corrupt_prob_far = 0.9;
    FaultInjector inj{cfg, 3, 1000.0, 2};
    int near_hits = 0;
    int far_hits = 0;
    for (int i = 0; i < 500; ++i) {
      near_hits += inj.corrupt_delivery(10.0, 180.0) ? 1 : 0;
      far_hits += inj.corrupt_delivery(170.0, 180.0) ? 1 : 0;
    }
    EXPECT_GT(far_hits, near_hits);
  }
}

TEST(FaultInjectorTest, CorruptPayloadFlipsBetweenOneAndFourBits) {
  FaultConfig cfg;
  cfg.corrupt_prob_near = 1.0;
  cfg.corrupt_prob_far = 1.0;
  FaultInjector inj{cfg, 5, 1000.0, 2};
  const std::vector<std::uint8_t> original(32, 0xA5);
  for (int trial = 0; trial < 50; ++trial) {
    auto damaged = original;
    inj.corrupt_payload(damaged);
    int flipped = 0;
    for (std::size_t i = 0; i < damaged.size(); ++i) {
      flipped += std::popcount(static_cast<std::uint8_t>(damaged[i] ^ original[i]));
    }
    EXPECT_GE(flipped, 1);
    EXPECT_LE(flipped, 4);
  }
  std::vector<std::uint8_t> empty;
  inj.corrupt_payload(empty);  // no-op, must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(FaultInjectorTest, SameSeedSameFaultSequence) {
  FaultConfig cfg;
  cfg.burst_rate_per_min = 10.0;
  cfg.burst_duration_s = 6.0;
  cfg.churn_rate_per_min = 20.0;
  cfg.churn_offline_mean_s = 8.0;
  cfg.corrupt_prob_near = 0.2;
  cfg.corrupt_prob_far = 0.7;
  FaultInjector x{cfg, 42, 1000.0, 6};
  FaultInjector y{cfg, 42, 1000.0, 6};
  for (int t = 1; t <= 240; ++t) {
    x.advance(0.5 * t, 0.5);
    y.advance(0.5 * t, 0.5);
    EXPECT_EQ(x.active_bursts(), y.active_bursts());
    EXPECT_EQ(x.offline_count(), y.offline_count());
    EXPECT_EQ(x.went_offline(), y.went_offline());
    const Vec2 p{300.0, 700.0};
    const Vec2 q{650.0, 200.0};
    EXPECT_EQ(x.extra_loss(p, q), y.extra_loss(p, q));
    EXPECT_EQ(x.corrupt_delivery(120.0, 180.0), y.corrupt_delivery(120.0, 180.0));
  }
}

// ---------------------------------------------------------------------------
// Engine-level guarantees
// ---------------------------------------------------------------------------

TEST(FaultEngineTest, DefaultFaultConfigIsBitInert) {
  // With every fault rate at zero, the injector must consume no randomness
  // and perturb nothing: changing inert knobs (durations, radii, backoff
  // parameters) must leave the run bit-identical, and every fault counter
  // must stay at zero.
  auto cfg = tiny_scenario();
  FleetSim plain{cfg, std::make_unique<ChattyStrategy>()};
  const RunMetrics mp = plain.run();

  auto cfg2 = cfg;
  cfg2.faults.burst_duration_s = 999.0;
  cfg2.faults.burst_radius_m = 1.0;
  cfg2.faults.burst_extra_loss = 0.25;
  cfg2.faults.churn_offline_mean_s = 77.0;
  cfg2.faults.backoff_base = 9.0;
  cfg2.faults.backoff_max_exp = 9;
  ASSERT_FALSE(cfg2.faults.any_faults());
  FleetSim tweaked{cfg2, std::make_unique<ChattyStrategy>()};
  const RunMetrics mt = tweaked.run();

  ASSERT_EQ(mp.loss_curve.size(), mt.loss_curve.size());
  for (std::size_t i = 0; i < mp.loss_curve.size(); ++i) {
    EXPECT_EQ(mp.loss_curve.values[i], mt.loss_curve.values[i]);
  }
  ASSERT_EQ(mp.final_params.size(), mt.final_params.size());
  for (std::size_t v = 0; v < mp.final_params.size(); ++v) {
    EXPECT_EQ(mp.final_params[v], mt.final_params[v]) << "vehicle " << v;
  }
  EXPECT_EQ(mp.transfers.bytes_delivered, mt.transfers.bytes_delivered);
  EXPECT_EQ(mp.transfers.sessions_started, mt.transfers.sessions_started);
  for (const RunMetrics* m : {&mp, &mt}) {
    EXPECT_EQ(m->transfers.frames_rejected, 0);
    EXPECT_EQ(m->transfers.model_frames_rejected, 0);
    EXPECT_EQ(m->transfers.sessions_lost_to_blackout, 0);
    EXPECT_EQ(m->transfers.backoff_retries, 0);
    EXPECT_EQ(m->transfers.offline_vehicle_seconds, 0.0);
  }
}

TEST(FaultEngineTest, FaultRunsBitDeterministicAcrossThreadCounts) {
  // All fault classes live on the single-threaded tick path, so a fault-laden
  // run must stay bit-identical for any worker-lane count.
  auto cfg = tiny_scenario();
  cfg.pair_cooldown_s = 10.0;
  cfg.faults.burst_rate_per_min = 2.0;
  cfg.faults.burst_duration_s = 10.0;
  cfg.faults.churn_rate_per_min = 1.0;
  cfg.faults.churn_offline_mean_s = 15.0;
  cfg.faults.corrupt_prob_near = 0.2;
  cfg.faults.corrupt_prob_far = 0.6;
  cfg.faults.chat_backoff = true;

  cfg.num_threads = 1;
  FleetSim seq{cfg, std::make_unique<ChattyStrategy>()};
  const RunMetrics ms = seq.run();
  cfg.num_threads = 4;
  FleetSim par{cfg, std::make_unique<ChattyStrategy>()};
  const RunMetrics mpar = par.run();

  EXPECT_EQ(ms.train_steps, mpar.train_steps);
  ASSERT_EQ(ms.loss_curve.size(), mpar.loss_curve.size());
  for (std::size_t i = 0; i < ms.loss_curve.size(); ++i) {
    EXPECT_EQ(ms.loss_curve.values[i], mpar.loss_curve.values[i]) << "eval point " << i;
  }
  ASSERT_EQ(ms.final_params.size(), mpar.final_params.size());
  for (std::size_t v = 0; v < ms.final_params.size(); ++v) {
    EXPECT_EQ(ms.final_params[v], mpar.final_params[v]) << "vehicle " << v;
  }
  EXPECT_EQ(ms.transfers.bytes_delivered, mpar.transfers.bytes_delivered);
  EXPECT_EQ(ms.transfers.sessions_started, mpar.transfers.sessions_started);
  EXPECT_EQ(ms.transfers.sessions_aborted, mpar.transfers.sessions_aborted);
  EXPECT_EQ(ms.transfers.frames_rejected, mpar.transfers.frames_rejected);
  EXPECT_EQ(ms.transfers.model_frames_rejected, mpar.transfers.model_frames_rejected);
  EXPECT_EQ(ms.transfers.sessions_lost_to_blackout, mpar.transfers.sessions_lost_to_blackout);
  EXPECT_EQ(ms.transfers.backoff_retries, mpar.transfers.backoff_retries);
  EXPECT_EQ(ms.transfers.offline_vehicle_seconds, mpar.transfers.offline_vehicle_seconds);
}

TEST(FaultEngineTest, ChurnPausesTrainingAndAccountsOfflineTime) {
  auto cfg = tiny_scenario();
  cfg.duration_s = 120.0;
  FleetSim clean{cfg, std::make_unique<LocalOnlyStrategy>()};
  const RunMetrics mc = clean.run();

  auto churny = cfg;
  churny.faults.churn_rate_per_min = 6.0;
  churny.faults.churn_offline_mean_s = 20.0;
  FleetSim sim{churny, std::make_unique<LocalOnlyStrategy>()};
  const RunMetrics mf = sim.run();

  EXPECT_GT(mf.transfers.offline_vehicle_seconds, 0.0);
  // Offline vehicles skip local training; they rejoin with state intact, so
  // training still happens (steps > 0) but fewer than the clean run.
  EXPECT_GT(mf.train_steps, 0);
  EXPECT_LT(mf.train_steps, mc.train_steps);
  // Loss remains finite/positive: churned vehicles kept their models.
  for (const double v : mf.loss_curve.values) EXPECT_GT(v, 0.0);
}

TEST(FaultEngineTest, BlackoutStallsTransfersAndIsAttributed) {
  // A map-covering full blackout: transfers cannot progress, the session
  // give-up timer fires, and the abort is attributed to the blackout.
  auto cfg = tiny_scenario();
  cfg.duration_s = 120.0;
  cfg.session_timeout_s = 10.0;
  cfg.pair_cooldown_s = 5.0;
  cfg.faults.burst_rate_per_min = 60.0;
  cfg.faults.burst_duration_s = 10000.0;
  cfg.faults.burst_radius_m = 1e9;
  cfg.faults.burst_extra_loss = 1.0;
  auto strategy = std::make_unique<ChattyStrategy>();
  auto* raw = strategy.get();
  raw->bytes_to_send = 500ull * 1024 * 1024;  // far more than one window
  FleetSim sim{cfg, std::move(strategy)};
  const RunMetrics m = sim.run();
  EXPECT_GE(m.transfers.sessions_lost_to_blackout, 1);
  EXPECT_LE(m.transfers.sessions_lost_to_blackout, m.transfers.sessions_aborted);
  EXPECT_EQ(m.transfers.model_sends_completed, 0);
  EXPECT_EQ(raw->accepted, 0);
}

TEST(FaultEngineTest, ChatBackoffBoundsRetryFrequency) {
  // Every delivered frame corrupt -> every chat fails. With backoff enabled
  // the pair's cooldown grows exponentially, so the fleet burns strictly
  // fewer sessions on the hopeless link than with the fixed cooldown.
  auto cfg = tiny_scenario();
  cfg.duration_s = 120.0;
  cfg.pair_cooldown_s = 2.0;
  cfg.faults.corrupt_prob_near = 1.0;
  cfg.faults.corrupt_prob_far = 1.0;

  auto plain_cfg = cfg;
  plain_cfg.faults.chat_backoff = false;
  FleetSim plain{plain_cfg, std::make_unique<ChattyStrategy>()};
  const RunMetrics mp = plain.run();

  auto backoff_cfg = cfg;
  backoff_cfg.faults.chat_backoff = true;
  FleetSim backoff{backoff_cfg, std::make_unique<ChattyStrategy>()};
  const RunMetrics mb = backoff.run();

  EXPECT_GT(mp.transfers.frames_rejected, 0);
  EXPECT_EQ(mp.transfers.backoff_retries, 0);  // gated off
  EXPECT_GT(mb.transfers.backoff_retries, 0);
  EXPECT_LT(mb.transfers.sessions_started, mp.transfers.sessions_started);
}

}  // namespace
}  // namespace lbchat::engine
