// Tests for the LbChat core: phi mappings, the Eq. (7) optimizer, coreset
// subsampling, and the full chat protocol as an engine strategy.
#include <gtest/gtest.h>

#include "core/compress_opt.h"
#include "core/lbchat.h"
#include "nn/optim.h"
#include "sim/world.h"

namespace lbchat::core {
namespace {

// --------------------------------------------------------- subsample / loss

coreset::Coreset make_coreset(std::size_t n, double weight_each = 2.0) {
  coreset::Coreset c;
  c.spec = data::kDefaultBevSpec;
  Rng rng{5};
  for (std::size_t i = 0; i < n; ++i) {
    data::Sample s;
    s.bev = data::BevGrid{c.spec};
    for (auto& cell : s.bev.cells) cell = rng.chance(0.2) ? 1 : 0;
    s.command = static_cast<data::Command>(i % data::kNumCommands);
    s.id = i;
    c.samples.push_back(std::move(s));
    c.wc.push_back(weight_each);
  }
  return c;
}

TEST(SubsampleTest, NoOpWhenSmall) {
  const auto c = make_coreset(10);
  const auto sub = subsample_coreset(c, 20);
  EXPECT_EQ(sub.size(), 10u);
}

TEST(SubsampleTest, PreservesTotalMass) {
  const auto c = make_coreset(100, 3.0);
  const auto sub = subsample_coreset(c, 16);
  EXPECT_LE(sub.size(), 34u);
  EXPECT_GE(sub.size(), 10u);
  EXPECT_NEAR(sub.total_weight(), c.total_weight(), 1e-9);
}

TEST(NormalizedLossTest, ScaleInvariantInMass) {
  const auto small = make_coreset(40, 1.0);
  auto heavy = small;
  for (double& w : heavy.wc) w *= 10.0;
  const nn::DrivingPolicy model{{}, 3};
  const coreset::PenaltyConfig penalty{0.0, 0.0};  // pure empirical term
  EXPECT_NEAR(normalized_coreset_loss(model, small, penalty),
              normalized_coreset_loss(model, heavy, penalty), 1e-9);
}

// --------------------------------------------------------- phi mapping

TEST(PhiMappingTest, FromPairsEvaluatesThroughAkima) {
  const PhiMapping phi{{0.125, 0.5, 1.0}, {0.8, 0.4, 0.2}};
  EXPECT_NEAR(phi(0.125), 0.8, 1e-9);
  EXPECT_NEAR(phi(1.0), 0.2, 1e-9);
  EXPECT_GT(phi(0.3), 0.2);
  EXPECT_LT(phi(0.3), 0.8);
  // Clamping: above the range returns the end value; below returns the
  // worst sampled loss sentinel.
  EXPECT_NEAR(phi(2.0), 0.2, 1e-9);
  EXPECT_NEAR(phi(0.01), 0.8, 1e-9);
}

TEST(PhiMappingTest, RejectsTooFewPoints) {
  EXPECT_THROW((PhiMapping{{0.5}, {0.1}}), std::invalid_argument);
  EXPECT_THROW((void)PhiMapping{}(0.5), std::logic_error);
}

TEST(PhiMappingTest, BuiltMappingDecreasesForTrainedModel) {
  // For a trained model, less compression (higher psi) can only preserve
  // more of the model, so phi(1) <= phi(0.125) (noise-tolerant check).
  sim::World world{sim::WorldConfig{}, 1, 7};
  data::WeightedDataset ds{data::kDefaultBevSpec};
  for (std::uint64_t f = 0; f < 200; ++f) {
    world.step(0.5);
    ds.add(world.collect_sample(0, f));
  }
  nn::DrivingPolicy model;
  nn::Adam opt{1e-3};
  Rng rng{9};
  for (int i = 0; i < 150; ++i) {
    const auto idx = ds.sample_batch(rng, 32);
    std::vector<const data::Sample*> batch;
    for (const auto j : idx) batch.push_back(&ds[j]);
    model.train_batch(batch, opt);
  }
  coreset::CoresetConfig ccfg;
  ccfg.target_size = 80;
  const auto cs = coreset::build_layered_coreset(ds, model, ccfg, rng);
  const PhiMapping phi = PhiMapping::build(model, cs, {});
  EXPECT_LT(phi(1.0), phi(0.125));
  EXPECT_LE(phi(1.0), phi(0.5) + 1e-9);
  ASSERT_EQ(phi.sample_psis().size(), 7u);
}

// --------------------------------------------------------- exchange gain

TEST(ExchangeGainTest, ZeroAtPsiZero) {
  const PhiMapping phi{{0.125, 1.0}, {0.5, 0.2}};
  EXPECT_DOUBLE_EQ(exchange_gain(10.0, phi, 0.0), 0.0);
}

TEST(ExchangeGainTest, CompressionNeverIncreasesAssessedValue) {
  // Regression: an (untrained) model whose pruned variants measure LOWER
  // losses than the original must not generate exchange gains at small psi —
  // the predicted loss is clamped from below by phi(1).
  const PhiMapping phi{{0.125, 0.5, 1.0}, {0.32, 0.36, 0.40}};  // inverted curve
  EXPECT_DOUBLE_EQ(exchange_gain(0.38, phi, 0.125), 0.0);
  EXPECT_DOUBLE_EQ(exchange_gain(0.38, phi, 1.0), 0.0);
  // A receiver genuinely worse than the uncompressed sender still gains.
  EXPECT_NEAR(exchange_gain(0.50, phi, 0.125), 0.10, 1e-9);
}

TEST(ExchangeGainTest, ReluTruncatesNegativeGain) {
  const PhiMapping phi{{0.125, 1.0}, {0.5, 0.2}};
  // Receiver already better than even the uncompressed sender model.
  EXPECT_DOUBLE_EQ(exchange_gain(0.1, phi, 1.0), 0.0);
  // Receiver worse: positive gain, growing with psi.
  EXPECT_NEAR(exchange_gain(0.6, phi, 1.0), 0.4, 1e-9);
  EXPECT_LT(exchange_gain(0.6, phi, 0.125), exchange_gain(0.6, phi, 1.0));
}

// --------------------------------------------------------- Eq. (7) solver

CompressionProblem basic_problem() {
  CompressionProblem p;
  p.loss_i_on_cj = 0.5;  // v_i is poor on the peer's data
  p.loss_j_on_ci = 0.5;
  p.phi_i = PhiMapping{{0.125, 0.25, 0.5, 0.75, 1.0}, {0.6, 0.45, 0.3, 0.25, 0.2}};
  p.phi_j = PhiMapping{{0.125, 0.25, 0.5, 0.75, 1.0}, {0.6, 0.45, 0.3, 0.25, 0.2}};
  p.model_bytes = 52.0 * 1024 * 1024;
  p.bandwidth_bps = 31e6;
  p.time_budget_s = 15.0;
  p.contact_s = 1e9;
  p.lambda_c = 0.0005;
  return p;
}

TEST(OptimizeTest, RespectsTimeConstraint) {
  const auto p = basic_problem();
  const CompressionDecision d = optimize_compression(p);
  const double window = std::min(p.time_budget_s, p.contact_s);
  EXPECT_LE(d.exchange_time_s, window + 1e-9);
  EXPECT_GE(d.psi_i, 0.0);
  EXPECT_LE(d.psi_i, 1.0);
  EXPECT_GE(d.psi_j, 0.0);
  EXPECT_LE(d.psi_j, 1.0);
}

TEST(OptimizeTest, BothSidesGainSymmetricProblem) {
  const auto p = basic_problem();
  const CompressionDecision d = optimize_compression(p);
  EXPECT_GT(d.psi_i, 0.0);
  EXPECT_GT(d.psi_j, 0.0);
  EXPECT_NEAR(d.psi_i, d.psi_j, 0.06);  // symmetric inputs, symmetric split
  EXPECT_GT(d.gain_to_i, 0.0);
  EXPECT_GT(d.gain_to_j, 0.0);
}

TEST(OptimizeTest, NoGainMeansNoTransfer) {
  auto p = basic_problem();
  p.loss_i_on_cj = 0.05;  // both receivers already better than the senders
  p.loss_j_on_ci = 0.05;
  const CompressionDecision d = optimize_compression(p);
  EXPECT_DOUBLE_EQ(d.psi_i, 0.0);
  EXPECT_DOUBLE_EQ(d.psi_j, 0.0);
  EXPECT_DOUBLE_EQ(d.exchange_time_s, 0.0);
}

TEST(OptimizeTest, OneSidedValueYieldsOneSidedTransfer) {
  auto p = basic_problem();
  p.loss_i_on_cj = 0.7;   // v_i wants x_j badly
  p.loss_j_on_ci = 0.02;  // v_j gains nothing from x_i
  const CompressionDecision d = optimize_compression(p);
  EXPECT_DOUBLE_EQ(d.psi_i, 0.0);
  EXPECT_GT(d.psi_j, 0.5);
}

TEST(OptimizeTest, TightContactForcesCompression) {
  auto p = basic_problem();
  p.contact_s = 7.0;  // roughly half a full one-way transfer
  const CompressionDecision d = optimize_compression(p);
  EXPECT_LE(d.exchange_time_s, 7.0 + 1e-9);
  EXPECT_LT(d.psi_i + d.psi_j, 0.55);
}

TEST(OptimizeTest, LargeLambdaSuppressesMarginalTransfers) {
  auto p = basic_problem();
  p.lambda_c = 10.0;  // time is precious
  const CompressionDecision d = optimize_compression(p);
  EXPECT_DOUBLE_EQ(d.psi_i + d.psi_j, 0.0);
}

TEST(OptimizeTest, LowGoodputShrinksFeasibleRegion) {
  auto p = basic_problem();
  const CompressionDecision fast = optimize_compression(p);
  p.bandwidth_bps = 31e6 * 0.3;  // heavy loss: effective bandwidth lower
  const CompressionDecision slow = optimize_compression(p);
  EXPECT_LE(slow.psi_i + slow.psi_j, fast.psi_i + fast.psi_j + 1e-9);
}

TEST(OptimizeTest, RejectsBadInputs) {
  auto p = basic_problem();
  p.bandwidth_bps = 0.0;
  EXPECT_THROW((void)optimize_compression(p), std::invalid_argument);
  EXPECT_THROW((void)optimize_compression(basic_problem(), 0), std::invalid_argument);
}

// --------------------------------------------------------- LbChat strategy

engine::ScenarioConfig chat_scenario() {
  engine::ScenarioConfig cfg;
  cfg.num_vehicles = 4;
  cfg.collect_duration_s = 90.0;
  cfg.duration_s = 180.0;
  cfg.eval_interval_s = 60.0;
  cfg.coreset_size = 40;
  cfg.pair_cooldown_s = 30.0;
  cfg.world.num_background_cars = 6;
  cfg.world.num_pedestrians = 10;
  return cfg;
}

TEST(LbChatStrategyTest, NamesReflectVariants) {
  EXPECT_EQ(LbChatStrategy{}.name(), "LbChat");
  LbChatOptions sco;
  sco.share_model = false;
  EXPECT_EQ(LbChatStrategy{sco}.name(), "SCO");
  LbChatOptions eq;
  eq.adaptive_compression = false;
  EXPECT_EQ(LbChatStrategy{eq}.name(), "LbChat(equal-comp)");
  LbChatOptions avg;
  avg.coreset_weighted_aggregation = false;
  EXPECT_EQ(LbChatStrategy{avg}.name(), "LbChat(avg-agg)");
}

TEST(LbChatStrategyTest, CoresetsBuiltAtSetupAndBounded) {
  auto strategy = std::make_unique<LbChatStrategy>();
  auto* raw = strategy.get();
  const auto cfg = chat_scenario();
  engine::FleetSim sim{cfg, std::move(strategy)};
  (void)sim.run();
  for (int v = 0; v < cfg.num_vehicles; ++v) {
    EXPECT_GT(raw->coreset_of(v).size(), 0u);
    EXPECT_LE(raw->coreset_of(v).size(), cfg.coreset_size);
  }
}

TEST(LbChatStrategyTest, ChatExchangesCoresetsAndExpandsDatasets) {
  const auto cfg = chat_scenario();
  engine::FleetSim sim{cfg, std::make_unique<LbChatStrategy>()};
  const engine::RunMetrics m = sim.run();
  EXPECT_GT(m.transfers.coreset_sends_started, 0);
  EXPECT_GT(m.transfers.coreset_sends_completed, 0);
  // Dataset expansion (§III-D): at least one vehicle absorbed foreign frames.
  bool expanded = false;
  for (int v = 0; v < cfg.num_vehicles; ++v) {
    const auto& ds = sim.node(v).dataset;
    for (std::size_t i = 0; i < ds.size() && !expanded; ++i) {
      expanded |= ds[i].source_vehicle != static_cast<std::uint32_t>(v);
    }
  }
  EXPECT_TRUE(expanded);
}

TEST(LbChatStrategyTest, ScoNeverSendsModels) {
  LbChatOptions opts;
  opts.share_model = false;
  const auto cfg = chat_scenario();
  engine::FleetSim sim{cfg, std::make_unique<LbChatStrategy>(opts)};
  const engine::RunMetrics m = sim.run();
  EXPECT_EQ(m.transfers.model_sends_started, 0);
  EXPECT_GT(m.transfers.coreset_sends_completed, 0);
}

TEST(LbChatStrategyTest, EqualCompressionAlwaysSendsModels) {
  LbChatOptions opts;
  opts.adaptive_compression = false;
  const auto cfg = chat_scenario();
  engine::FleetSim sim{cfg, std::make_unique<LbChatStrategy>(opts)};
  const engine::RunMetrics m = sim.run();
  // Blind equal-ratio compression transfers models on every completed chat.
  EXPECT_GT(m.transfers.model_sends_started, 0);
}

TEST(LbChatStrategyTest, TrainingImprovesHeldOutLoss) {
  auto cfg = chat_scenario();
  cfg.duration_s = 300.0;
  engine::FleetSim sim{cfg, std::make_unique<LbChatStrategy>()};
  const engine::RunMetrics m = sim.run();
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front() * 0.7);
}

TEST(LbChatStrategyTest, DeterministicAcrossRuns) {
  const auto cfg = chat_scenario();
  engine::FleetSim a{cfg, std::make_unique<LbChatStrategy>()};
  engine::FleetSim b{cfg, std::make_unique<LbChatStrategy>()};
  const auto ma = a.run();
  const auto mb = b.run();
  EXPECT_EQ(ma.final_params[0], mb.final_params[0]);
  EXPECT_EQ(ma.transfers.coreset_sends_completed, mb.transfers.coreset_sends_completed);
}

}  // namespace
}  // namespace lbchat::core

// Appended: LbChat with an alternative coreset construction (paper §V).
#include "coreset/alternatives.h"

namespace lbchat::core {
namespace {

engine::ScenarioConfig alt_chat_scenario() {
  engine::ScenarioConfig cfg;
  cfg.num_vehicles = 4;
  cfg.collect_duration_s = 90.0;
  cfg.duration_s = 180.0;
  cfg.eval_interval_s = 60.0;
  cfg.coreset_size = 40;
  cfg.pair_cooldown_s = 30.0;
  cfg.world.num_background_cars = 6;
  cfg.world.num_pedestrians = 10;
  return cfg;
}

class LbChatCoresetMethodTest
    : public ::testing::TestWithParam<coreset::CoresetMethod> {};

TEST_P(LbChatCoresetMethodTest, ProtocolWorksWithAlternativeConstructions) {
  LbChatOptions opts;
  opts.coreset_method = GetParam();
  const auto cfg = alt_chat_scenario();
  engine::FleetSim sim{cfg, std::make_unique<LbChatStrategy>(opts)};
  const engine::RunMetrics m = sim.run();
  EXPECT_GT(m.transfers.coreset_sends_completed, 0);
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front());
}

INSTANTIATE_TEST_SUITE_P(Methods, LbChatCoresetMethodTest,
                         ::testing::Values(coreset::CoresetMethod::kUniform,
                                           coreset::CoresetMethod::kSensitivity,
                                           coreset::CoresetMethod::kClustering));

}  // namespace
}  // namespace lbchat::core
