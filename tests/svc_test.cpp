// Fleet-evaluation service tests (src/svc, DESIGN.md §13).
//
// The determinism spine: a job's served payload must be byte-identical
// across {cold run, cache hit, preempted + re-queued + resumed run,
// persisted + recovered-in-a-new-service run}, at 1 and 4 workers, with
// faults and adversaries enabled. Everything else — queue ordering,
// backpressure, cancellation, the wire protocol — wraps around that.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "svc/job.h"
#include "svc/json.h"
#include "svc/protocol.h"
#include "svc/queue.h"
#include "svc/result_cache.h"
#include "svc/server.h"
#include "svc/socket.h"

namespace lbchat::svc {
namespace {

// --- helpers ---------------------------------------------------------------

std::filesystem::path fresh_dir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const auto dir = std::filesystem::temp_directory_path() /
                   ("lbchat_svc_" + tag + "_" + std::to_string(::getpid()) + "_" +
                    std::to_string(counter.fetch_add(1)));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
}

// The tiny-but-complete scenario every run test uses: small fleet, short
// horizon, faults + Byzantine peers + stragglers all live, so the determinism
// assertions cover the full engine surface.
std::string tiny_spec(int seed = 7, const std::string& extra_members = "") {
  std::string spec = R"({"approach":"LbChat","name":"tiny","vehicles":4,)"
                     R"("duration":40,"collect_duration":20,"collect_fps":1,)"
                     R"("eval_frames":2,"background_cars":4,"pedestrians":6,)"
                     R"("eval_interval":10,"train_interval":2,"batch_size":4,)"
                     R"("coreset":12,"time_budget":8,"pair_cooldown":5,)"
                     R"("radio_range":400,"model_bytes":4194304,)"
                     R"("byzantine_frac":0.25,"straggler_frac":0.25,)"
                     R"("faults":{"burst_rate_per_min":2.0,"burst_extra_loss":1.0,)"
                     R"("churn_rate_per_min":0.5,"corrupt_prob_near":0.05,)"
                     R"("corrupt_prob_far":0.2,"chat_backoff":true},)";
  spec += "\"seed\":" + std::to_string(seed);
  if (!extra_members.empty()) spec += "," + extra_members;
  spec += "}";
  return spec;
}

ServiceOptions tiny_options(const std::filesystem::path& root, int workers,
                            bool cache_enabled = true, double epoch_s = 10.0) {
  ServiceOptions opts;
  opts.workers = workers;
  opts.epoch_s = epoch_s;
  opts.root = root;
  opts.cache_enabled = cache_enabled;
  return opts;
}

JobStatus submit_and_wait(FleetService& service, const std::string& spec) {
  std::string error;
  const std::uint64_t id = service.submit(spec, error);
  EXPECT_NE(id, 0u) << error;
  JobStatus status;
  EXPECT_TRUE(service.wait(id, status));
  return status;
}

// --- JSON parser -----------------------------------------------------------

TEST(JsonTest, ParsesScalarsObjectsArrays) {
  std::string err;
  const auto v = json_parse(
      R"({"a":1.5,"b":"x\nA","c":[true,false,null],"d":{"e":-2e3}})", err);
  ASSERT_NE(v, nullptr) << err;
  EXPECT_DOUBLE_EQ(v->get("a")->as_number(), 1.5);
  EXPECT_EQ(v->get("b")->as_string(), "x\nA");
  ASSERT_EQ(v->get("c")->items().size(), 3u);
  EXPECT_TRUE(v->get("c")->items()[0]->as_bool());
  EXPECT_TRUE(v->get("c")->items()[2]->is_null());
  EXPECT_DOUBLE_EQ(v->get("d")->get("e")->as_number(), -2000.0);
  EXPECT_EQ(v->get("missing"), nullptr);
}

TEST(JsonTest, ParsesSurrogatePairs) {
  std::string err;
  const auto v = json_parse(R"("😀")", err);
  ASSERT_NE(v, nullptr) << err;
  EXPECT_EQ(v->as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string err;
  EXPECT_EQ(json_parse("{", err), nullptr);
  EXPECT_EQ(json_parse("{\"a\":1,}", err), nullptr);
  EXPECT_EQ(json_parse("[1 2]", err), nullptr);
  EXPECT_EQ(json_parse("01", err), nullptr);
  EXPECT_EQ(json_parse("\"unterminated", err), nullptr);
  EXPECT_EQ(json_parse("\"bad\\q\"", err), nullptr);
  EXPECT_EQ(json_parse("nul", err), nullptr);
  EXPECT_EQ(json_parse("{} trailing", err), nullptr);
  EXPECT_EQ(json_parse(R"({"a":1,"a":2})", err), nullptr) << "duplicate keys";
  EXPECT_FALSE(err.empty());
}

TEST(JsonTest, RecordsSourceSpans) {
  std::string err;
  const std::string text = R"( {"a":"{spec}","spec":{"x":[1, 2]},"n":-2e3} )";
  const auto v = json_parse(text, err);
  ASSERT_NE(v, nullptr) << err;
  const auto slice = [&](const JsonValue* j) {
    return text.substr(j->source_begin(), j->source_end() - j->source_begin());
  };
  EXPECT_EQ(slice(v.get()), R"({"a":"{spec}","spec":{"x":[1, 2]},"n":-2e3})");
  EXPECT_EQ(slice(v->get("a")), R"("{spec}")");
  EXPECT_EQ(slice(v->get("spec")), R"({"x":[1, 2]})");
  EXPECT_EQ(slice(v->get("spec")->get("x")), "[1, 2]");
  EXPECT_EQ(slice(v->get("n")), "-2e3");
}

TEST(JsonTest, EscapeRoundTrips) {
  const std::string raw = "a\"b\\c\nd\x01";
  std::string err;
  const auto v = json_parse("\"" + json_escape(raw) + "\"", err);
  ASSERT_NE(v, nullptr) << err;
  EXPECT_EQ(v->as_string(), raw);
}

// --- Job specs -------------------------------------------------------------

TEST(JobSpecTest, ParsesFullSpec) {
  JobSpec spec;
  std::string err;
  ASSERT_TRUE(parse_job_spec(tiny_spec(7, R"("priority":3,"events":true)"), spec, err)) << err;
  EXPECT_EQ(spec.approach_name, "LbChat");
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.priority, 3);
  EXPECT_TRUE(spec.events);
  EXPECT_EQ(spec.cfg.num_vehicles, 4);
  EXPECT_DOUBLE_EQ(spec.cfg.duration_s, 40.0);
  EXPECT_EQ(spec.cfg.batch_size, 4);
  EXPECT_DOUBLE_EQ(spec.cfg.adversary.byzantine_frac, 0.25);
  EXPECT_DOUBLE_EQ(spec.cfg.faults.burst_rate_per_min, 2.0);
  EXPECT_TRUE(spec.cfg.faults.chat_backoff);
  EXPECT_EQ(spec.source, tiny_spec(7, R"("priority":3,"events":true)"));
}

TEST(JobSpecTest, RejectsUnknownAndInvalid) {
  JobSpec spec;
  std::string err;
  EXPECT_FALSE(parse_job_spec(R"({"approch":"LbChat"})", spec, err));
  EXPECT_NE(err.find("approch"), std::string::npos);
  EXPECT_FALSE(parse_job_spec(R"({"vehicles":"four"})", spec, err));
  EXPECT_FALSE(parse_job_spec(R"({"vehicles":1})", spec, err));
  EXPECT_FALSE(parse_job_spec(R"({"duration":0})", spec, err));
  EXPECT_FALSE(parse_job_spec(R"({"approach":"NoSuch"})", spec, err));
  EXPECT_FALSE(parse_job_spec(R"({"faults":{"burst_rate":1}})", spec, err));
  EXPECT_FALSE(parse_job_spec(R"([1,2])", spec, err));
  EXPECT_FALSE(parse_job_spec("not json", spec, err));
}

TEST(JobSpecTest, StrategyKeyAndOptionsParse) {
  // "strategy" is the registry-keyed spelling; "approach" stays accepted for
  // pre-registry specs. Options are validated against the registry schema.
  JobSpec spec;
  std::string err;
  ASSERT_TRUE(parse_job_spec(
      R"({"strategy":"DynThresh","vehicles":4,"duration":40,)"
      R"("strategy_options":{"divergence_bound":2e-4,"pair_weight":0.5}})",
      spec, err))
      << err;
  EXPECT_EQ(spec.approach_name, "DynThresh");
  EXPECT_DOUBLE_EQ(spec.options.get_or("divergence_bound", -1.0), 2e-4);

  EXPECT_FALSE(parse_job_spec(R"({"strategy":"NoSuch"})", spec, err));
  EXPECT_NE(err.find("NoSuch"), std::string::npos);
  EXPECT_FALSE(parse_job_spec(
      R"({"strategy":"DynThresh","vehicles":4,"duration":40,)"
      R"("strategy_options":{"divergence_bond":1.0}})",
      spec, err))
      << "typo'd option key must fail the submission";
  EXPECT_NE(err.find("divergence_bond"), std::string::npos);
  EXPECT_FALSE(parse_job_spec(
      R"({"strategy":"DynThresh","strategy_options":{"divergence_bound":"x"}})", spec, err));
}

TEST(JobSpecTest, FingerprintSplitsOnNonDefaultOptionsOnly) {
  JobSpec plain;
  JobSpec defaults;
  JobSpec custom;
  std::string err;
  const std::string base = R"("strategy":"DynThresh","vehicles":4,"duration":40)";
  ASSERT_TRUE(parse_job_spec("{" + base + "}", plain, err)) << err;
  ASSERT_TRUE(parse_job_spec(
      "{" + base + R"(,"strategy_options":{"divergence_bound":1.5e-2}})", defaults, err))
      << err;
  ASSERT_TRUE(parse_job_spec(
      "{" + base + R"(,"strategy_options":{"divergence_bound":2e-4}})", custom, err))
      << err;
  // Explicit schema defaults canonicalize away; a real tuning splits the key.
  EXPECT_EQ(job_fingerprint(plain), job_fingerprint(defaults));
  EXPECT_NE(job_fingerprint(plain), job_fingerprint(custom));
}

TEST(JobSpecTest, FingerprintSplitsOnEventsButNotPreemptAt) {
  JobSpec plain;
  JobSpec events;
  JobSpec preempt;
  std::string err;
  ASSERT_TRUE(parse_job_spec(tiny_spec(), plain, err)) << err;
  ASSERT_TRUE(parse_job_spec(tiny_spec(7, R"("events":true)"), events, err)) << err;
  ASSERT_TRUE(parse_job_spec(tiny_spec(7, R"("preempt_at":20)"), preempt, err)) << err;
  // events changes the payload file set, so it must split the cache key;
  // preempt_at cannot change the payload bytes, so it must not.
  EXPECT_NE(job_fingerprint(plain), job_fingerprint(events));
  EXPECT_EQ(job_fingerprint(plain), job_fingerprint(preempt));
}

// --- Queue -----------------------------------------------------------------

TEST(JobQueueTest, PriorityThenFifoOrdering) {
  JobQueue q{8};
  EXPECT_TRUE(q.push(1, 0));
  EXPECT_TRUE(q.push(2, 5));
  EXPECT_TRUE(q.push(3, 0));
  EXPECT_TRUE(q.push(4, 5));
  EXPECT_EQ(q.front_priority(), 5);
  EXPECT_EQ(q.pop(), 2u);
  EXPECT_EQ(q.pop(), 4u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), 3u);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.front_priority(), std::nullopt);
}

TEST(JobQueueTest, BoundedWithForceBypass) {
  JobQueue q{2};
  EXPECT_TRUE(q.push(1, 0));
  EXPECT_TRUE(q.push(2, 0));
  EXPECT_FALSE(q.push(3, 0)) << "capacity must bound ordinary pushes";
  EXPECT_TRUE(q.push(3, 0, /*force=*/true)) << "preempted re-entries bypass the bound";
  EXPECT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.remove(2));
  EXPECT_FALSE(q.remove(2));
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), 3u);
}

// --- Result cache ----------------------------------------------------------

TEST(ResultCacheTest, PublishLookupRoundTrip) {
  const auto root = fresh_dir("cache");
  ResultCache cache{root};
  JobPayload payload;
  payload.metrics_json = "{\"metrics\":[]}";
  payload.report_json = "{\"approach\":\"x\"}";
  payload.manifest_json = "{\"files\":[\"metrics.json\",\"report.json\"]}";

  JobPayload out;
  EXPECT_FALSE(cache.lookup(0xABCDu, out));
  ASSERT_TRUE(cache.publish(0xABCDu, payload));
  ASSERT_TRUE(cache.lookup(0xABCDu, out));
  EXPECT_EQ(out.metrics_json, payload.metrics_json);
  EXPECT_EQ(out.report_json, payload.report_json);
  EXPECT_EQ(out.manifest_json, payload.manifest_json);
  EXPECT_TRUE(out.events_jsonl.empty());
  // Re-publishing an existing fingerprint is an idempotent success.
  EXPECT_TRUE(cache.publish(0xABCDu, payload));
  std::filesystem::remove_all(root);
}

TEST(ResultCacheTest, HalfWrittenEntryReadsAsMiss) {
  const auto root = fresh_dir("cache_half");
  ResultCache cache{root};
  // An entry directory without manifest.json (crashed publish) is a miss.
  std::filesystem::create_directories(cache.entry_dir(7));
  std::ofstream{cache.entry_dir(7) / "metrics.json"} << "{}";
  JobPayload out;
  EXPECT_FALSE(cache.lookup(7, out));
  std::filesystem::remove_all(root);
}

// --- Service: runs, cache, determinism -------------------------------------

TEST(FleetServiceTest, SubmitRunsAndProducesPayload) {
  const auto root = fresh_dir("run");
  FleetService service{tiny_options(root, 1)};
  const JobStatus status = submit_and_wait(service, tiny_spec());
  ASSERT_EQ(status.state, JobState::kDone) << status.error;
  EXPECT_FALSE(status.cached);

  JobPayload payload;
  std::string error;
  ASSERT_TRUE(service.result(status.id, payload, error)) << error;
  EXPECT_NE(payload.metrics_json.find("run.final_mean_loss"), std::string::npos);
  EXPECT_NE(payload.report_json.find("\"vehicles\""), std::string::npos);
  EXPECT_NE(payload.manifest_json.find("\"loss_curve\""), std::string::npos);

  // The payload on disk is exactly what result() returned.
  EXPECT_EQ(slurp(std::filesystem::path{status.output_dir} / "metrics.json"),
            payload.metrics_json);
  EXPECT_EQ(slurp(std::filesystem::path{status.output_dir} / "report.json"),
            payload.report_json);
  EXPECT_EQ(slurp(std::filesystem::path{status.output_dir} / "manifest.json"),
            payload.manifest_json);
  service.shutdown(false);
  std::filesystem::remove_all(root);
}

TEST(FleetServiceTest, RegistryStrategyRunsThroughService) {
  // A registry-only strategy (no Approach enum value) with non-default
  // options must run end to end through the job server; the options split
  // the cache key from the default-configured run.
  const auto root = fresh_dir("dynthresh");
  FleetService service{tiny_options(root, 1)};
  const std::string spec = R"({"strategy":"DynThresh","name":"dt","vehicles":4,)"
                           R"("duration":40,"collect_duration":20,"collect_fps":1,)"
                           R"("eval_frames":2,"background_cars":4,"pedestrians":6,)"
                           R"("eval_interval":10,"train_interval":2,"batch_size":4,)"
                           R"("coreset":12,"seed":7,)"
                           R"("strategy_options":{"divergence_bound":1e-3}})";
  const JobStatus status = submit_and_wait(service, spec);
  ASSERT_EQ(status.state, JobState::kDone) << status.error;
  JobPayload payload;
  std::string error;
  ASSERT_TRUE(service.result(status.id, payload, error)) << error;
  EXPECT_NE(payload.manifest_json.find("DynThresh"), std::string::npos);

  // Same spec: cache hit. Different bound: a fresh run.
  const JobStatus again = submit_and_wait(service, spec);
  EXPECT_TRUE(again.cached);
  std::string retuned = spec;
  retuned.replace(retuned.find("1e-3"), 4, "2e-3");
  const JobStatus other = submit_and_wait(service, retuned);
  ASSERT_EQ(other.state, JobState::kDone) << other.error;
  EXPECT_FALSE(other.cached);
  service.shutdown(false);
  std::filesystem::remove_all(root);
}

TEST(FleetServiceTest, CacheHitServesSameBytesWithoutRunning) {
  const auto root = fresh_dir("cachehit");
  FleetService service{tiny_options(root, 1)};
  const JobStatus first = submit_and_wait(service, tiny_spec());
  ASSERT_EQ(first.state, JobState::kDone) << first.error;
  const JobStatus second = submit_and_wait(service, tiny_spec());
  ASSERT_EQ(second.state, JobState::kDone) << second.error;
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1u) << "the second submission must not run";
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.submitted, 2u);

  JobPayload a;
  JobPayload b;
  std::string error;
  ASSERT_TRUE(service.result(first.id, a, error));
  ASSERT_TRUE(service.result(second.id, b, error));
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.report_json, b.report_json);
  EXPECT_EQ(a.manifest_json, b.manifest_json);
  // A different spec is a miss.
  const JobStatus third = submit_and_wait(service, tiny_spec(8));
  EXPECT_FALSE(third.cached);
  service.shutdown(false);
  std::filesystem::remove_all(root);
}

// The headline test: a straight run vs a run preempted at T/2, re-queued,
// and resumed must export byte-identical metrics/report payloads — at 1 and
// at 4 workers, with faults and adversaries live. Caching is disabled so the
// preempted run really runs.
class PreemptDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(PreemptDeterminismTest, PreemptedRunMatchesStraightRun) {
  const int workers = GetParam();
  const auto ref_root = fresh_dir("det_ref");
  JobPayload reference;
  {
    FleetService service{tiny_options(ref_root, 1, /*cache_enabled=*/false)};
    const JobStatus status = submit_and_wait(service, tiny_spec());
    ASSERT_EQ(status.state, JobState::kDone) << status.error;
    std::string error;
    ASSERT_TRUE(service.result(status.id, reference, error)) << error;
    service.shutdown(false);
  }

  const auto root = fresh_dir("det_preempt");
  FleetService service{tiny_options(root, workers, /*cache_enabled=*/false)};
  // Preempt at T/2 = 20s of the 40s horizon. At 4 workers, surround the
  // preempted job with same-spec companions so re-queue + resume happens in
  // a busy pool (and likely on a different worker).
  std::string error;
  const std::uint64_t id = service.submit(tiny_spec(7, R"("preempt_at":20)"), error);
  ASSERT_NE(id, 0u) << error;
  std::vector<std::uint64_t> companions;
  for (int i = 1; i < workers; ++i) {
    const std::uint64_t cid = service.submit(tiny_spec(7, R"("preempt_at":20)"), error);
    ASSERT_NE(cid, 0u) << error;
    companions.push_back(cid);
  }
  JobStatus status;
  ASSERT_TRUE(service.wait(id, status));
  ASSERT_EQ(status.state, JobState::kDone) << status.error;
  EXPECT_GE(status.preemptions, 1) << "preempt_at must have fired";

  JobPayload payload;
  ASSERT_TRUE(service.result(id, payload, error)) << error;
  EXPECT_EQ(payload.metrics_json, reference.metrics_json);
  EXPECT_EQ(payload.report_json, reference.report_json);
  EXPECT_EQ(payload.manifest_json, reference.manifest_json);

  for (const std::uint64_t cid : companions) {
    JobStatus cs;
    ASSERT_TRUE(service.wait(cid, cs));
    ASSERT_EQ(cs.state, JobState::kDone) << cs.error;
    JobPayload cp;
    ASSERT_TRUE(service.result(cid, cp, error)) << error;
    EXPECT_EQ(cp.metrics_json, reference.metrics_json);
    EXPECT_EQ(cp.report_json, reference.report_json);
  }
  service.shutdown(false);
  std::filesystem::remove_all(ref_root);
  std::filesystem::remove_all(root);
}

INSTANTIATE_TEST_SUITE_P(Workers, PreemptDeterminismTest, ::testing::Values(1, 4));

TEST(FleetServiceTest, EventsJobExportsIdenticalEventsAcrossPreemption) {
  // The event ring travels through the checkpoint's kObs section, so even
  // the events.jsonl export is byte-stable across a mid-run preemption.
  const auto ref_root = fresh_dir("ev_ref");
  JobPayload reference;
  {
    FleetService service{tiny_options(ref_root, 1, /*cache_enabled=*/false)};
    const JobStatus st = submit_and_wait(service, tiny_spec(7, R"("events":true)"));
    ASSERT_EQ(st.state, JobState::kDone) << st.error;
    std::string error;
    ASSERT_TRUE(service.result(st.id, reference, error)) << error;
    ASSERT_FALSE(reference.events_jsonl.empty());
    service.shutdown(false);
  }
  const auto root = fresh_dir("ev_preempt");
  FleetService service{tiny_options(root, 2, /*cache_enabled=*/false)};
  const JobStatus st =
      submit_and_wait(service, tiny_spec(7, R"("events":true,"preempt_at":20)"));
  ASSERT_EQ(st.state, JobState::kDone) << st.error;
  EXPECT_GE(st.preemptions, 1);
  JobPayload payload;
  std::string error;
  ASSERT_TRUE(service.result(st.id, payload, error)) << error;
  EXPECT_EQ(payload.events_jsonl, reference.events_jsonl);
  EXPECT_EQ(payload.metrics_json, reference.metrics_json);
  service.shutdown(false);
  std::filesystem::remove_all(ref_root);
  std::filesystem::remove_all(root);
}

// Graceful-shutdown hardening: a daemon stopped mid-run persists every
// unfinished job; a new service over the same root resumes them from their
// checkpoints (counting the hop as a migration) and serves payloads
// byte-identical to a straight run. No job is lost or corrupted.
TEST(FleetServiceTest, ShutdownPersistsAndRestartResumesByteIdentically) {
  const auto ref_root = fresh_dir("restart_ref");
  JobPayload ref_a;
  JobPayload ref_b;
  {
    FleetService service{tiny_options(ref_root, 1, /*cache_enabled=*/false)};
    const JobStatus a = submit_and_wait(service, tiny_spec());
    ASSERT_EQ(a.state, JobState::kDone) << a.error;
    std::string error;
    ASSERT_TRUE(service.result(a.id, ref_a, error));
    const JobStatus b = submit_and_wait(service, tiny_spec(8));
    ASSERT_EQ(b.state, JobState::kDone) << b.error;
    ASSERT_TRUE(service.result(b.id, ref_b, error));
    service.shutdown(false);
  }

  const auto root = fresh_dir("restart");
  std::uint64_t id_a = 0;
  std::uint64_t id_b = 0;
  {
    // Job A self-preempts at T/2 and re-queues behind job B (same priority,
    // earlier queue seat). Shutting down right after persists A (queued, with
    // a mid-run checkpoint) and B (stop-preempted at its next slice boundary).
    FleetService service{tiny_options(root, 1, /*cache_enabled=*/false, 5.0)};
    std::string error;
    id_a = service.submit(tiny_spec(7, R"("preempt_at":20)"), error);
    ASSERT_NE(id_a, 0u) << error;
    id_b = service.submit(tiny_spec(8), error);
    ASSERT_NE(id_b, 0u) << error;
    // Wait until A has actually been preempted at least once, so its
    // persisted state includes a mid-run checkpoint.
    for (int i = 0; i < 6000; ++i) {
      const auto st = service.status(id_a);
      ASSERT_TRUE(st.has_value());
      if (st->preemptions >= 1 || st->state == JobState::kDone) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    service.shutdown(/*persist=*/true);
  }

  {
    FleetService service{tiny_options(root, 2, /*cache_enabled=*/false, 5.0)};
    const ServiceStats boot = service.stats();
    EXPECT_GE(boot.recovered, 1u) << "persisted jobs must be re-queued on restart";
    JobStatus a;
    JobStatus b;
    ASSERT_TRUE(service.wait(id_a, a)) << "job A lost across restart";
    ASSERT_TRUE(service.wait(id_b, b)) << "job B lost across restart";
    ASSERT_EQ(a.state, JobState::kDone) << a.error;
    ASSERT_EQ(b.state, JobState::kDone) << b.error;
    EXPECT_GE(service.stats().migrations, 1u)
        << "a checkpointed job resumed in a new process counts as a migration";

    JobPayload pa;
    JobPayload pb;
    std::string error;
    ASSERT_TRUE(service.result(id_a, pa, error)) << error;
    ASSERT_TRUE(service.result(id_b, pb, error)) << error;
    EXPECT_EQ(pa.metrics_json, ref_a.metrics_json);
    EXPECT_EQ(pa.report_json, ref_a.report_json);
    EXPECT_EQ(pa.manifest_json, ref_a.manifest_json);
    EXPECT_EQ(pb.metrics_json, ref_b.metrics_json);
    EXPECT_EQ(pb.report_json, ref_b.report_json);
    service.shutdown(false);
  }
  std::filesystem::remove_all(ref_root);
  std::filesystem::remove_all(root);
}

// --- Service: queue behaviour without workers ------------------------------

TEST(FleetServiceTest, BackpressureAndCancel) {
  const auto root = fresh_dir("backpressure");
  ServiceOptions opts = tiny_options(root, 0);
  opts.queue_capacity = 2;
  FleetService service{opts};
  std::string error;
  const std::uint64_t a = service.submit(tiny_spec(), error);
  ASSERT_NE(a, 0u);
  const std::uint64_t b = service.submit(tiny_spec(8), error);
  ASSERT_NE(b, 0u);
  EXPECT_EQ(service.submit(tiny_spec(9), error), 0u);
  EXPECT_EQ(error, "queue_full");
  EXPECT_EQ(service.stats().submitted, 2u)
      << "rejected submissions must not count as submitted";

  EXPECT_TRUE(service.cancel(a));
  EXPECT_FALSE(service.cancel(a)) << "already terminal";
  const auto st = service.status(a);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->state, JobState::kCancelled);
  // The cancelled job freed a slot.
  EXPECT_NE(service.submit(tiny_spec(9), error), 0u);
  EXPECT_FALSE(service.cancel(999)) << "unknown job";
  service.shutdown(false);
  std::filesystem::remove_all(root);
}

TEST(FleetServiceTest, WaitTimesOutWithoutBlockingOnNonTerminalJobs) {
  const auto root = fresh_dir("wait_timeout");
  FleetService service{tiny_options(root, 0)};  // no workers: never terminal
  std::string error;
  const std::uint64_t id = service.submit(tiny_spec(), error);
  ASSERT_NE(id, 0u) << error;
  JobStatus status;
  EXPECT_FALSE(service.wait(999, status, 0.05)) << "unknown id stays false";
  ASSERT_TRUE(service.wait(id, status, 0.05));
  EXPECT_EQ(status.state, JobState::kQueued)
      << "a bounded wait must return the current status instead of hanging";
  service.shutdown(false);
  std::filesystem::remove_all(root);
}

// A recovered job's state files must outlive the recovery itself: deleting
// them at boot meant any non-clean exit after a restart silently lost every
// unfinished job. They are removed only when the job reaches a terminal state.
TEST(FleetServiceTest, RecoveredJobsSurviveASecondUncleanRestart) {
  const auto root = fresh_dir("rerestart");
  std::uint64_t id = 0;
  {
    FleetService service{tiny_options(root, 0)};
    std::string error;
    id = service.submit(tiny_spec(), error);
    ASSERT_NE(id, 0u) << error;
    service.shutdown(/*persist=*/true);
  }
  const auto spec_file = root / "state" / ("job_" + std::to_string(id) + ".spec.json");
  {
    // Boot 2 recovers the job, then exits without persisting — the stand-in
    // for a crash/SIGKILL after recovery.
    FleetService service{tiny_options(root, 0)};
    EXPECT_EQ(service.stats().recovered, 1u);
    EXPECT_TRUE(std::filesystem::exists(spec_file))
        << "recovery must not delete the persisted state";
    service.shutdown(/*persist=*/false);
  }
  {
    // Boot 3 still sees the job and runs it to completion.
    FleetService service{tiny_options(root, 1)};
    EXPECT_EQ(service.stats().recovered, 1u) << "job lost by the second restart";
    JobStatus status;
    ASSERT_TRUE(service.wait(id, status));
    EXPECT_EQ(status.state, JobState::kDone) << status.error;
    service.shutdown(false);
  }
  EXPECT_FALSE(std::filesystem::exists(spec_file))
      << "terminal jobs must clean up their state files";
  std::filesystem::remove_all(root);
}

TEST(FleetServiceTest, DrainPersistsQueuedJobsAndRefusesNewOnes) {
  const auto root = fresh_dir("drain");
  std::uint64_t id = 0;
  {
    FleetService service{tiny_options(root, 0)};
    std::string error;
    id = service.submit(tiny_spec(), error);
    ASSERT_NE(id, 0u) << error;
    EXPECT_EQ(service.drain(), 1u);
    EXPECT_EQ(service.submit(tiny_spec(8), error), 0u);
    EXPECT_EQ(error, "draining");
    service.shutdown(false);
  }
  // The drained job's spec survived on disk and a fresh service runs it.
  {
    FleetService service{tiny_options(root, 1)};
    EXPECT_EQ(service.stats().recovered, 1u);
    JobStatus status;
    ASSERT_TRUE(service.wait(id, status));
    EXPECT_EQ(status.state, JobState::kDone) << status.error;
    service.shutdown(false);
  }
  std::filesystem::remove_all(root);
}

// --- Protocol + socket -----------------------------------------------------

TEST(ProtocolTest, RejectsMalformedRequests) {
  const auto root = fresh_dir("proto_err");
  FleetService service{tiny_options(root, 0)};
  EXPECT_NE(handle_request(service, "not json").line.find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(handle_request(service, "[]").line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(handle_request(service, R"({"cmd":"nope"})").line.find("unknown command"),
            std::string::npos);
  EXPECT_NE(handle_request(service, R"({"cmd":"status"})").line.find("positive integer"),
            std::string::npos);
  EXPECT_NE(handle_request(service, R"({"cmd":"status","id":42})").line.find("unknown job"),
            std::string::npos);
  EXPECT_NE(handle_request(service, R"({"cmd":"submit","spec":{"vehicles":1}})")
                .line.find("\"ok\":false"),
            std::string::npos);
  EXPECT_FALSE(handle_request(service, R"({"cmd":"stats"})").shutdown);
  EXPECT_TRUE(handle_request(service, R"({"cmd":"shutdown"})").shutdown);
  service.shutdown(false);
  std::filesystem::remove_all(root);
}

TEST(ProtocolTest, SubmitSlicesSpecFromParserSpans) {
  const auto root = fresh_dir("proto_spans");
  FleetService service{tiny_options(root, 0)};
  // An earlier (tolerated) member containing a nested "spec" key used to
  // derail the textual slicer; the spec's span now comes from the DOM.
  const std::string request =
      R"({"cmd":"submit","meta":{"spec":{"bogus":1}},"spec":)" + tiny_spec() + "}";
  const auto reply = handle_request(service, request);
  ASSERT_EQ(reply.line.rfind("{\"ok\":true", 0), 0u) << reply.line;
  // The persisted source is exactly the spec member's bytes.
  const auto st = service.status(1);
  ASSERT_TRUE(st.has_value());
  JobSpec expected;
  std::string err;
  ASSERT_TRUE(parse_job_spec(tiny_spec(), expected, err)) << err;
  EXPECT_EQ(st->fingerprint, job_fingerprint(expected));
  EXPECT_NE(handle_request(service, R"({"cmd":"submit","spec":[1]})")
                .line.find("must be an object"),
            std::string::npos);
  service.shutdown(false);
  std::filesystem::remove_all(root);
}

TEST(ProtocolTest, StatusEmbedsCheckpointInspectionForPreemptedJobs) {
  const auto root = fresh_dir("proto_ckpt");
  FleetService service{tiny_options(root, 0)};
  std::string error;
  const std::uint64_t id = service.submit(tiny_spec(), error);
  ASSERT_NE(id, 0u) << error;
  // Queued job held: no checkpoint yet, so no embedded inspection.
  const auto queued = handle_request(service, R"({"cmd":"status","id":1})");
  EXPECT_EQ(queued.line.find("\"checkpoint\""), std::string::npos);
  EXPECT_NE(queued.line.find("\"state\":\"queued\""), std::string::npos);
  service.shutdown(false);
  std::filesystem::remove_all(root);
}

TEST(SocketTest, RequestRoundTripAndShutdown) {
  const auto root = fresh_dir("socket");
  const std::string sock = (root / "svc.sock").string();
  FleetService service{tiny_options(root, 1)};
  SocketServer server;
  std::string error;
  ASSERT_TRUE(server.listen(sock, error)) << error;
  std::thread serve_thread{[&] {
    server.serve([&service](const std::string& line) {
      const ProtocolReply reply = handle_request(service, line);
      return ServerReply{reply.line, reply.shutdown};
    });
  }};

  const std::string submit_reply = request_over_socket(
      sock, "{\"cmd\":\"submit\",\"spec\":" + tiny_spec() + "}", error);
  ASSERT_FALSE(submit_reply.empty()) << error;
  EXPECT_EQ(submit_reply.rfind("{\"ok\":true", 0), 0u) << submit_reply;

  // Waits are bounded daemon-side; poll until the job is terminal.
  std::string wait_reply;
  for (int i = 0; i < 60; ++i) {
    wait_reply = request_over_socket(sock, R"({"cmd":"wait","id":1,"timeout_s":2})", error);
    ASSERT_FALSE(wait_reply.empty()) << error;
    if (wait_reply.find("\"state\":\"done\"") != std::string::npos) break;
  }
  EXPECT_NE(wait_reply.find("\"state\":\"done\""), std::string::npos) << wait_reply;

  const std::string result_reply =
      request_over_socket(sock, R"({"cmd":"result","id":1})", error);
  EXPECT_NE(result_reply.find("\"manifest\""), std::string::npos) << result_reply;
  EXPECT_NE(result_reply.find("\"output_dir\""), std::string::npos) << result_reply;

  const std::string stats_reply =
      request_over_socket(sock, R"({"cmd":"stats"})", error);
  EXPECT_NE(stats_reply.find("\"completed\":1"), std::string::npos) << stats_reply;

  const std::string bye = request_over_socket(sock, R"({"cmd":"shutdown"})", error);
  EXPECT_EQ(bye, "{\"ok\":true}");
  serve_thread.join();
  service.shutdown(false);
  std::filesystem::remove_all(root);
}

// A client that disconnects before reading its reply must be a closed
// connection, not a SIGPIPE: the default disposition would kill the daemon
// mid-flight, losing every accepted-but-unfinished job.
TEST(SocketTest, ClientGoneBeforeReplyDoesNotKillServer) {
  const auto root = fresh_dir("socket_gone");
  const std::string sock = (root / "svc.sock").string();
  FleetService service{tiny_options(root, 0)};  // no workers: job stays queued
  SocketServer server;
  std::string error;
  ASSERT_TRUE(server.listen(sock, error)) << error;
  std::thread serve_thread{[&] {
    server.serve([&service](const std::string& line) {
      const ProtocolReply reply = handle_request(service, line);
      return ServerReply{reply.line, reply.shutdown};
    });
  }};
  ASSERT_NE(service.submit(tiny_spec(), error), 0u) << error;

  // Raw client: send a bounded wait, then vanish without reading the reply.
  // The daemon writes its answer ~0.3s later into the closed socket.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(sock.size(), sizeof addr.sun_path);
  std::memcpy(addr.sun_path, sock.c_str(), sock.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  const std::string req = "{\"cmd\":\"wait\",\"id\":1,\"timeout_s\":0.3}\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(req.size()));
  ::close(fd);

  // The daemon survived and still answers.
  const std::string stats_reply = request_over_socket(sock, R"({"cmd":"stats"})", error);
  ASSERT_FALSE(stats_reply.empty()) << error;
  EXPECT_EQ(stats_reply.rfind("{\"ok\":true", 0), 0u) << stats_reply;

  const std::string bye = request_over_socket(sock, R"({"cmd":"shutdown"})", error);
  EXPECT_EQ(bye, "{\"ok\":true}");
  serve_thread.join();
  service.shutdown(false);
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace lbchat::svc
