// Scenario × strategy robustness matrix, shared by the regression test
// (robustness_matrix_test.cpp) and the runner tool
// (tools/run_robustness_matrix.cpp).
//
// Rows are adversary/heterogeneity scenarios — clean, 12%- and 25%-Byzantine,
// a straggler-heavy heterogeneous fleet, and Byzantine-plus-radio-faults —
// and columns are the three head-to-head strategies (LbChat, DP, DFL-DDS).
// Every cell is a small fixed-seed run whose behavioural digest (loss-curve
// bits, honest-cohort final loss, attacker weight share, adversary counters,
// checkpoint CRC) is committed in tests/goldens/robustness_matrix.golden.
//
// Cells run with event tracing OFF, so each cell is independent of process
// history (no per-process metric accumulation, unlike golden_scenarios.h)
// and the matrix can be run in any order or subset.
#pragma once

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>

#include "baselines/factory.h"
#include "common/bytes.h"
#include "common/frame.h"
#include "engine/fleet.h"
#include "nn/kernel_dispatch.h"
#include "obs/obs.h"

namespace lbchat::robustness {

inline constexpr const char* kApproaches[] = {"LbChat", "DP", "DFL-DDS"};

struct MatrixScenario {
  const char* name;
  double byzantine_frac;  ///< AdversaryConfig::byzantine_frac
  double straggler_frac;  ///< HeteroConfig::straggler_frac (plus radio/data skew)
  bool faults;            ///< golden-style radio faults (bursts, churn, corruption)
};

/// Append new scenarios LAST and regenerate the committed golden — the file
/// lists cells in this order.
inline constexpr MatrixScenario kMatrixScenarios[] = {
    {"clean", 0.0, 0.0, false},
    {"byz12", 0.125, 0.0, false},
    {"byz25", 0.25, 0.0, false},
    {"stragglers", 0.0, 0.5, false},
    {"byzfaults", 0.25, 0.0, true},
};

/// One matrix cell config: golden_config-like micro run, doubled to 8
/// vehicles so the Byzantine fractions quantize to whole attackers
/// (12.5% -> 1, 25% -> 2) with an honest majority left to measure.
inline engine::ScenarioConfig matrix_config(const MatrixScenario& sc) {
  engine::ScenarioConfig cfg;
  cfg.seed = 21;
  cfg.num_vehicles = 8;
  cfg.world.num_background_cars = 6;
  cfg.world.num_pedestrians = 10;
  cfg.collect_duration_s = 60.0;
  cfg.collect_fps = 1.0;
  cfg.eval_frames_per_vehicle = 4;
  cfg.duration_s = 120.0;
  cfg.eval_interval_s = 30.0;
  cfg.train_interval_s = 4.0;
  cfg.batch_size = 8;
  cfg.coreset_size = 24;
  cfg.pair_cooldown_s = 10.0;
  cfg.time_budget_s = 10.0;
  cfg.radio.max_range_m = 400.0;
  cfg.wire.model_bytes = 8ull * 1024 * 1024;
  cfg.wire.coreset_bytes_per_sample = 2048;
  if (sc.faults) {
    cfg.faults.burst_rate_per_min = 4.0;
    cfg.faults.burst_duration_s = 10.0;
    cfg.faults.burst_radius_m = 200.0;
    cfg.faults.burst_extra_loss = 0.8;
    cfg.faults.churn_rate_per_min = 1.0;
    cfg.faults.churn_offline_mean_s = 10.0;
    cfg.faults.corrupt_prob_near = 0.02;
    cfg.faults.corrupt_prob_far = 0.2;
    cfg.faults.chat_backoff = true;
  }
  cfg.adversary.byzantine_frac = sc.byzantine_frac;
  // Moderate sign flip: the regime that separates the defenses. A heavily
  // scaled flip (the 3.0 default) inflates the poisoned model's validation
  // loss so much that even DP's blind log1p weighting hands it a vanishing
  // alpha and everybody survives; at 1.5 the flipped model looks only
  // moderately bad, which still earns it a substantial merge weight from the
  // hold-out-loss weighting (DP) and the entropy weighting (DFL-DDS), while
  // LbChat's coreset evaluation — sharper because the merged coreset carries
  // the sender's own data distribution — rejects or heavily down-weights it.
  cfg.adversary.poison_scale = 1.5;
  if (sc.straggler_frac > 0.0) {
    cfg.hetero.straggler_frac = sc.straggler_frac;
    cfg.hetero.slow_radio_frac = sc.straggler_frac;
    cfg.hetero.dataset_skew = 0.5;
  }
  return cfg;
}

struct CellResult {
  std::string scenario;
  std::string approach;
  double final_loss = 0.0;
  /// Final mean held-out loss of the honest cohort (== final_loss when the
  /// cell has no adversary).
  double honest_final_loss = 0.0;
  /// Fraction of merged peer-weight mass honest receivers granted to
  /// Byzantine senders (0 when the cell has no adversary).
  double attacker_share = 0.0;
  int byzantine_payloads = 0;
  long straggler_skips = 0;
  int frames_rejected = 0;
  std::string digest;  ///< one `cell=... key=value ...` golden line
};

inline std::uint64_t fnv64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Run one cell (event tracing off) and digest it.
inline CellResult run_matrix_cell(const MatrixScenario& sc, const char* approach) {
  // Pinned digests assume the scalar kernel path (DESIGN.md §15), same as
  // the golden-scenario suite.
  nn::ScopedKernelPath kernel_guard{nn::KernelPath::kScalar};
  obs::reset();
  obs::set_events_enabled(false);
  engine::FleetSim sim{matrix_config(sc),
                       baselines::make_strategy(baselines::approach_from_name(approach))};
  sim.prepare();
  sim.run_until(sim.config().duration_s);
  ByteWriter ckpt;
  sim.save_checkpoint(ckpt);
  const engine::RunMetrics m = sim.finalize();

  CellResult out;
  out.scenario = sc.name;
  out.approach = approach;
  out.final_loss = m.loss_curve.values.back();
  out.honest_final_loss = m.honest_loss_curve.values.empty()
                              ? out.final_loss
                              : m.honest_loss_curve.values.back();
  out.attacker_share = m.transfers.attacker_weight_share();
  out.byzantine_payloads = m.transfers.byzantine_payloads_sent;
  out.straggler_skips = m.transfers.straggler_train_skips;
  out.frames_rejected = m.transfers.frames_rejected;

  std::uint64_t curve = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < m.loss_curve.size(); ++i) {
    curve = fnv64(curve, std::bit_cast<std::uint64_t>(m.loss_curve.times[i]));
    curve = fnv64(curve, std::bit_cast<std::uint64_t>(m.loss_curve.values[i]));
  }
  for (std::size_t i = 0; i < m.honest_loss_curve.size(); ++i) {
    curve = fnv64(curve, std::bit_cast<std::uint64_t>(m.honest_loss_curve.values[i]));
    curve = fnv64(curve, std::bit_cast<std::uint64_t>(m.attacker_loss_curve.values[i]));
  }

  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "cell=%s/%s curve_fnv64=%016llx final_loss_bits=%016llx "
      "honest_final_loss_bits=%016llx attacker_share_bits=%016llx byz_payloads=%d "
      "straggler_skips=%ld frames_rejected=%d checkpoint_crc32=%08x checkpoint_bytes=%zu",
      sc.name, approach, static_cast<unsigned long long>(curve),
      static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(out.final_loss)),
      static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(out.honest_final_loss)),
      static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(out.attacker_share)),
      out.byzantine_payloads, out.straggler_skips, out.frames_rejected,
      frame::crc32(ckpt.bytes()), ckpt.size());
  out.digest = buf;
  return out;
}

}  // namespace lbchat::robustness
