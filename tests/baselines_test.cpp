// Tests for the benchmark strategies: ProxSkip, RSU-L, DFL-DDS, DP,
// DynThresh, SimGossip, the factory, and their aggregation rules.
#include <gtest/gtest.h>

#include "baselines/dfl_dds.h"
#include "baselines/dp.h"
#include "baselines/dyn_thresh.h"
#include "baselines/factory.h"
#include "baselines/proxskip.h"
#include "baselines/rsul.h"
#include "baselines/sim_gossip.h"
#include "engine/fleet.h"

namespace lbchat::baselines {
namespace {

engine::ScenarioConfig small_scenario() {
  engine::ScenarioConfig cfg;
  cfg.num_vehicles = 4;
  cfg.collect_duration_s = 90.0;
  cfg.duration_s = 180.0;
  cfg.eval_interval_s = 60.0;
  cfg.coreset_size = 40;
  cfg.pair_cooldown_s = 30.0;
  cfg.world.num_background_cars = 6;
  cfg.world.num_pedestrians = 10;
  return cfg;
}

// ---------------------------------------------------------------- factory

TEST(FactoryTest, NamesRoundtrip) {
  for (const Approach a : kAllApproaches) {
    EXPECT_EQ(approach_from_name(approach_name(a)), a);
    const auto strategy = make_strategy(a);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), approach_name(a));
  }
  EXPECT_THROW((void)approach_from_name("NotAnApproach"), std::invalid_argument);
}

// ---------------------------------------------------------------- ProxSkip

TEST(ProxSkipTest, SynchronizationAlignsModelsWithoutLoss) {
  auto cfg = small_scenario();
  cfg.wireless_loss = false;
  ProxSkipOptions opts;
  opts.comm_probability = 1.0;  // synchronize every round
  engine::FleetSim sim{cfg, std::make_unique<ProxSkipStrategy>(opts)};
  (void)sim.run();
  // After a lossless sync every vehicle holds the same model.
  const auto p0 = sim.node(0).model.params();
  for (int v = 1; v < cfg.num_vehicles; ++v) {
    const auto pv = sim.node(v).model.params();
    for (std::size_t i = 0; i < p0.size(); i += 997) {
      EXPECT_FLOAT_EQ(p0[i], pv[i]) << "vehicle " << v << " diverged";
    }
  }
}

TEST(ProxSkipTest, ReducesLoss) {
  auto cfg = small_scenario();
  cfg.duration_s = 240.0;
  engine::FleetSim sim{cfg, std::make_unique<ProxSkipStrategy>()};
  const auto m = sim.run();
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front() * 0.8);
}

TEST(ProxSkipTest, ModelSendCountingMatchesSyncRounds) {
  auto cfg = small_scenario();
  cfg.wireless_loss = false;
  ProxSkipOptions opts;
  opts.comm_probability = 1.0;
  engine::FleetSim sim{cfg, std::make_unique<ProxSkipStrategy>(opts)};
  const auto m = sim.run();
  // Every sync is an upload + download per vehicle; lossless -> all complete.
  EXPECT_GT(m.transfers.model_sends_started, 0);
  EXPECT_EQ(m.transfers.model_sends_started, m.transfers.model_sends_completed);
  EXPECT_EQ(m.transfers.model_sends_started % (2 * cfg.num_vehicles), 0);
}

TEST(ProxSkipTest, WirelessLossDropsSomeTransfers) {
  auto cfg = small_scenario();
  cfg.wireless_loss = true;
  cfg.duration_s = 300.0;
  ProxSkipOptions opts;
  opts.comm_probability = 1.0;
  engine::FleetSim sim{cfg, std::make_unique<ProxSkipStrategy>(opts)};
  const auto m = sim.run();
  ASSERT_GT(m.transfers.model_sends_started, 50);
  const double rate = m.transfers.model_receiving_rate();
  EXPECT_GT(rate, 0.4);
  EXPECT_LT(rate, 0.85);  // ~60% like the paper's infra approaches
}

// ---------------------------------------------------------------- RSU-L

TEST(RsuTest, PlacesRequestedRsusApart) {
  auto cfg = small_scenario();
  auto strategy = std::make_unique<RsuStrategy>();
  auto* raw = strategy.get();
  engine::FleetSim sim{cfg, std::move(strategy)};
  (void)sim.run();
  ASSERT_EQ(raw->rsu_positions().size(), 3u);
  // RSUs sit on intersections inside the map.
  for (const Vec2& p : raw->rsu_positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, sim.world().map().extent());
  }
}

TEST(RsuTest, VehiclesExchangeWithRsus) {
  auto cfg = small_scenario();
  cfg.duration_s = 240.0;
  engine::FleetSim sim{cfg, std::make_unique<RsuStrategy>()};
  const auto m = sim.run();
  EXPECT_GT(m.transfers.model_sends_started, 0);
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front());
}

// ---------------------------------------------------------------- DFL-DDS

TEST(DflDdsTest, CompositionStartsAsIdentity) {
  auto cfg = small_scenario();
  auto strategy = std::make_unique<DflDdsStrategy>();
  auto* raw = strategy.get();
  engine::FleetSim sim{cfg, std::move(strategy)};
  // Setup runs inside run(); use a zero-duration run to probe initial state.
  auto cfg2 = cfg;
  cfg2.duration_s = 0.0;
  engine::FleetSim sim2{cfg2, std::make_unique<DflDdsStrategy>()};
  (void)sim.run();
  // After exchanges, compositions should no longer be pure.
  bool mixed = false;
  for (int v = 0; v < cfg.num_vehicles && !mixed; ++v) {
    const auto& comp = raw->composition(v);
    for (std::size_t k = 0; k < comp.size(); ++k) {
      if (static_cast<int>(k) != v && comp[k] > 1e-6) mixed = true;
    }
  }
  EXPECT_TRUE(mixed) << "DFL-DDS never diversified its data sources";
}

TEST(DflDdsTest, RunsSynchronousRoundsAndImproves) {
  auto cfg = small_scenario();
  cfg.duration_s = 240.0;
  engine::FleetSim sim{cfg, std::make_unique<DflDdsStrategy>()};
  const auto m = sim.run();
  EXPECT_GT(m.transfers.model_sends_started, 0);
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front());
}

// ---------------------------------------------------------------- DP

TEST(DpTest, GossipExchangesAndImproves) {
  auto cfg = small_scenario();
  cfg.duration_s = 240.0;
  engine::FleetSim sim{cfg, std::make_unique<DpStrategy>()};
  const auto m = sim.run();
  EXPECT_GT(m.transfers.model_sends_started, 0);
  EXPECT_EQ(m.transfers.coreset_sends_started, 0);  // models only
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front());
}

TEST(DpTest, DeterministicAcrossRuns) {
  const auto cfg = small_scenario();
  engine::FleetSim a{cfg, std::make_unique<DpStrategy>()};
  engine::FleetSim b{cfg, std::make_unique<DpStrategy>()};
  EXPECT_EQ(a.run().final_params[0], b.run().final_params[0]);
}

// ---------------------------------------------------------------- DynThresh

TEST(DynThreshTest, DivergenceBoundGatesCommunication) {
  auto cfg = small_scenario();
  cfg.duration_s = 240.0;
  // A bound no RMS drift will ever reach: every vehicle stays silent.
  DynThreshOptions quiet;
  quiet.divergence_bound = 1e6;
  engine::FleetSim silent{cfg, std::make_unique<DynThreshStrategy>(quiet)};
  const auto m_silent = silent.run();
  EXPECT_EQ(m_silent.transfers.sessions_started, 0);
  EXPECT_EQ(m_silent.transfers.bytes_delivered, 0u);

  // A bound every training step crosses: the DP cadence, models only.
  DynThreshOptions chatty;
  chatty.divergence_bound = 1e-9;
  engine::FleetSim busy{cfg, std::make_unique<DynThreshStrategy>(chatty)};
  const auto m_busy = busy.run();
  EXPECT_GT(m_busy.transfers.sessions_started, 0);
  EXPECT_EQ(m_busy.transfers.coreset_sends_started, 0);
  EXPECT_LT(m_busy.loss_curve.values.back(), m_busy.loss_curve.values.front());
}

TEST(DynThreshTest, ResyncResetsDivergence) {
  auto cfg = small_scenario();
  cfg.duration_s = 240.0;
  DynThreshOptions opts;
  opts.divergence_bound = 1e-9;  // force frequent resyncs
  auto strategy = std::make_unique<DynThreshStrategy>(opts);
  auto* raw = strategy.get();
  engine::FleetSim sim{cfg, std::move(strategy)};
  const auto m = sim.run();
  ASSERT_GT(m.transfers.model_sends_completed, 0) << "no resync ever completed";
  // The cached divergence is finite and non-negative for every vehicle, and
  // after a run with resyncs it is the drift since the last sync, not the
  // whole training history.
  for (int v = 0; v < cfg.num_vehicles; ++v) {
    EXPECT_GE(raw->divergence(v), 0.0);
    EXPECT_LT(raw->divergence(v), 1.0);
  }
}

// ---------------------------------------------------------------- SimGossip

TEST(SimGossipTest, SimilarityWeightIsMonotoneAndBounded) {
  const SimGossipStrategy s;
  // Identical models blend 50/50; weight decays monotonically as the cosine
  // falls away and never exceeds the plain-averaging cap.
  EXPECT_NEAR(s.weight_for_similarity(1.0), 0.5, 1e-12);
  double prev = 0.5;
  for (double c = 0.95; c >= -1.0; c -= 0.05) {
    const double w = s.weight_for_similarity(c);
    EXPECT_LT(w, prev) << "cosine " << c;
    EXPECT_GT(w, 0.0);
    prev = w;
  }
  // Temperature controls the softness: hotter = closer to plain averaging.
  SimGossipOptions hot;
  hot.temperature = 100.0;
  const SimGossipStrategy soft{hot};
  EXPECT_GT(soft.weight_for_similarity(0.0), 0.49);
}

TEST(SimGossipTest, GossipExchangesAndImproves) {
  auto cfg = small_scenario();
  cfg.duration_s = 240.0;
  engine::FleetSim sim{cfg, std::make_unique<SimGossipStrategy>()};
  const auto m = sim.run();
  EXPECT_GT(m.transfers.model_sends_started, 0);
  EXPECT_EQ(m.transfers.coreset_sends_started, 0);  // models only
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front());
}

// ------------------------------------------------- cross-strategy sanity

class EveryApproachTest : public ::testing::TestWithParam<Approach> {};

TEST_P(EveryApproachTest, RunsAndLearns) {
  auto cfg = small_scenario();
  cfg.duration_s = 200.0;
  engine::FleetSim sim{cfg, make_strategy(GetParam())};
  const auto m = sim.run();
  ASSERT_GE(m.loss_curve.size(), 2u);
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front())
      << approach_name(GetParam()) << " failed to reduce the held-out loss";
  EXPECT_EQ(m.final_params.size(), static_cast<std::size_t>(cfg.num_vehicles));
}

INSTANTIATE_TEST_SUITE_P(All, EveryApproachTest,
                         ::testing::Values(Approach::kProxSkip, Approach::kRsuL,
                                           Approach::kDflDds, Approach::kDp,
                                           Approach::kLbChat, Approach::kSco,
                                           Approach::kLbChatEqualComp,
                                           Approach::kLbChatAvgAgg));

}  // namespace
}  // namespace lbchat::baselines
