// Tests for the benchmark strategies: ProxSkip, RSU-L, DFL-DDS, DP, the
// factory, and their aggregation rules.
#include <gtest/gtest.h>

#include "baselines/dfl_dds.h"
#include "baselines/dp.h"
#include "baselines/factory.h"
#include "baselines/proxskip.h"
#include "baselines/rsul.h"
#include "engine/fleet.h"

namespace lbchat::baselines {
namespace {

engine::ScenarioConfig small_scenario() {
  engine::ScenarioConfig cfg;
  cfg.num_vehicles = 4;
  cfg.collect_duration_s = 90.0;
  cfg.duration_s = 180.0;
  cfg.eval_interval_s = 60.0;
  cfg.coreset_size = 40;
  cfg.pair_cooldown_s = 30.0;
  cfg.world.num_background_cars = 6;
  cfg.world.num_pedestrians = 10;
  return cfg;
}

// ---------------------------------------------------------------- factory

TEST(FactoryTest, NamesRoundtrip) {
  for (const Approach a :
       {Approach::kProxSkip, Approach::kRsuL, Approach::kDflDds, Approach::kDp,
        Approach::kLbChat, Approach::kSco, Approach::kLbChatEqualComp,
        Approach::kLbChatAvgAgg}) {
    EXPECT_EQ(approach_from_name(approach_name(a)), a);
    const auto strategy = make_strategy(a);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), approach_name(a));
  }
  EXPECT_THROW((void)approach_from_name("NotAnApproach"), std::invalid_argument);
}

// ---------------------------------------------------------------- ProxSkip

TEST(ProxSkipTest, SynchronizationAlignsModelsWithoutLoss) {
  auto cfg = small_scenario();
  cfg.wireless_loss = false;
  ProxSkipOptions opts;
  opts.comm_probability = 1.0;  // synchronize every round
  engine::FleetSim sim{cfg, std::make_unique<ProxSkipStrategy>(opts)};
  (void)sim.run();
  // After a lossless sync every vehicle holds the same model.
  const auto p0 = sim.node(0).model.params();
  for (int v = 1; v < cfg.num_vehicles; ++v) {
    const auto pv = sim.node(v).model.params();
    for (std::size_t i = 0; i < p0.size(); i += 997) {
      EXPECT_FLOAT_EQ(p0[i], pv[i]) << "vehicle " << v << " diverged";
    }
  }
}

TEST(ProxSkipTest, ReducesLoss) {
  auto cfg = small_scenario();
  cfg.duration_s = 240.0;
  engine::FleetSim sim{cfg, std::make_unique<ProxSkipStrategy>()};
  const auto m = sim.run();
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front() * 0.8);
}

TEST(ProxSkipTest, ModelSendCountingMatchesSyncRounds) {
  auto cfg = small_scenario();
  cfg.wireless_loss = false;
  ProxSkipOptions opts;
  opts.comm_probability = 1.0;
  engine::FleetSim sim{cfg, std::make_unique<ProxSkipStrategy>(opts)};
  const auto m = sim.run();
  // Every sync is an upload + download per vehicle; lossless -> all complete.
  EXPECT_GT(m.transfers.model_sends_started, 0);
  EXPECT_EQ(m.transfers.model_sends_started, m.transfers.model_sends_completed);
  EXPECT_EQ(m.transfers.model_sends_started % (2 * cfg.num_vehicles), 0);
}

TEST(ProxSkipTest, WirelessLossDropsSomeTransfers) {
  auto cfg = small_scenario();
  cfg.wireless_loss = true;
  cfg.duration_s = 300.0;
  ProxSkipOptions opts;
  opts.comm_probability = 1.0;
  engine::FleetSim sim{cfg, std::make_unique<ProxSkipStrategy>(opts)};
  const auto m = sim.run();
  ASSERT_GT(m.transfers.model_sends_started, 50);
  const double rate = m.transfers.model_receiving_rate();
  EXPECT_GT(rate, 0.4);
  EXPECT_LT(rate, 0.85);  // ~60% like the paper's infra approaches
}

// ---------------------------------------------------------------- RSU-L

TEST(RsuTest, PlacesRequestedRsusApart) {
  auto cfg = small_scenario();
  auto strategy = std::make_unique<RsuStrategy>();
  auto* raw = strategy.get();
  engine::FleetSim sim{cfg, std::move(strategy)};
  (void)sim.run();
  ASSERT_EQ(raw->rsu_positions().size(), 3u);
  // RSUs sit on intersections inside the map.
  for (const Vec2& p : raw->rsu_positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, sim.world().map().extent());
  }
}

TEST(RsuTest, VehiclesExchangeWithRsus) {
  auto cfg = small_scenario();
  cfg.duration_s = 240.0;
  engine::FleetSim sim{cfg, std::make_unique<RsuStrategy>()};
  const auto m = sim.run();
  EXPECT_GT(m.transfers.model_sends_started, 0);
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front());
}

// ---------------------------------------------------------------- DFL-DDS

TEST(DflDdsTest, CompositionStartsAsIdentity) {
  auto cfg = small_scenario();
  auto strategy = std::make_unique<DflDdsStrategy>();
  auto* raw = strategy.get();
  engine::FleetSim sim{cfg, std::move(strategy)};
  // Setup runs inside run(); use a zero-duration run to probe initial state.
  auto cfg2 = cfg;
  cfg2.duration_s = 0.0;
  engine::FleetSim sim2{cfg2, std::make_unique<DflDdsStrategy>()};
  (void)sim.run();
  // After exchanges, compositions should no longer be pure.
  bool mixed = false;
  for (int v = 0; v < cfg.num_vehicles && !mixed; ++v) {
    const auto& comp = raw->composition(v);
    for (std::size_t k = 0; k < comp.size(); ++k) {
      if (static_cast<int>(k) != v && comp[k] > 1e-6) mixed = true;
    }
  }
  EXPECT_TRUE(mixed) << "DFL-DDS never diversified its data sources";
}

TEST(DflDdsTest, RunsSynchronousRoundsAndImproves) {
  auto cfg = small_scenario();
  cfg.duration_s = 240.0;
  engine::FleetSim sim{cfg, std::make_unique<DflDdsStrategy>()};
  const auto m = sim.run();
  EXPECT_GT(m.transfers.model_sends_started, 0);
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front());
}

// ---------------------------------------------------------------- DP

TEST(DpTest, GossipExchangesAndImproves) {
  auto cfg = small_scenario();
  cfg.duration_s = 240.0;
  engine::FleetSim sim{cfg, std::make_unique<DpStrategy>()};
  const auto m = sim.run();
  EXPECT_GT(m.transfers.model_sends_started, 0);
  EXPECT_EQ(m.transfers.coreset_sends_started, 0);  // models only
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front());
}

TEST(DpTest, DeterministicAcrossRuns) {
  const auto cfg = small_scenario();
  engine::FleetSim a{cfg, std::make_unique<DpStrategy>()};
  engine::FleetSim b{cfg, std::make_unique<DpStrategy>()};
  EXPECT_EQ(a.run().final_params[0], b.run().final_params[0]);
}

// ------------------------------------------------- cross-strategy sanity

class EveryApproachTest : public ::testing::TestWithParam<Approach> {};

TEST_P(EveryApproachTest, RunsAndLearns) {
  auto cfg = small_scenario();
  cfg.duration_s = 200.0;
  engine::FleetSim sim{cfg, make_strategy(GetParam())};
  const auto m = sim.run();
  ASSERT_GE(m.loss_curve.size(), 2u);
  EXPECT_LT(m.loss_curve.values.back(), m.loss_curve.values.front())
      << approach_name(GetParam()) << " failed to reduce the held-out loss";
  EXPECT_EQ(m.final_params.size(), static_cast<std::size_t>(cfg.num_vehicles));
}

INSTANTIATE_TEST_SUITE_P(All, EveryApproachTest,
                         ::testing::Values(Approach::kProxSkip, Approach::kRsuL,
                                           Approach::kDflDds, Approach::kDp,
                                           Approach::kLbChat, Approach::kSco,
                                           Approach::kLbChatEqualComp,
                                           Approach::kLbChatAvgAgg));

}  // namespace
}  // namespace lbchat::baselines
