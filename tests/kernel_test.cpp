// Kernel parity/fuzz battery for the dispatched GEMM backends and the int8
// eval path (DESIGN.md §15).
//
// Layer 1 — microkernel parity: every dispatch path compiled into this build
// and runnable on this CPU is driven over randomized shapes (ragged m/n/k,
// k = 0, single rows/columns), denormal and large-magnitude operands, and
// prefilled accumulators, and compared against the naive_* triple-loop
// oracles under the per-path tolerance contract:
//
//   scalar sgemm/sgemm_atb   bit-exact vs naive when C starts zeroed
//   scalar sgemm_abt         float-reassociation error (8-lane reduction)
//   avx2 / neon              float-reassociation error, <= 1e-4 relative
//   igemm_abt                bit-exact on EVERY path (int32 accumulation)
//
// Layer 2 — dispatch plumbing: availability, parse/name round-trips,
// set_kernel_path error contract, ScopedKernelPath restore, cache-key
// salting.
//
// Layer 3 — engine determinism spine per path: a tiny fleet run is
// bit-identical 1-vs-4 threads and across checkpoint/resume on each
// available path (goldens pin the scalar path's absolute numerics
// elsewhere; here we pin that every path is *self*-consistent).
//
// Layer 4 — the int8 eval knob: off is bit-inert (fingerprint, checkpoint
// bytes, loss-curve bits all unchanged vs a config that never mentions it);
// on changes the fingerprint, stays thread-count bit-identical, and the
// quantized forward error respects an analytic quantizer bound.
//
// CI runs this suite under LBCHAT_KERNEL=scalar and =avx2 plus one
// ASan/UBSan pass (.github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "baselines/registry.h"
#include "common/bytes.h"
#include "common/fingerprint.h"
#include "common/rng.h"
#include "data/frame.h"
#include "engine/checkpoint.h"
#include "engine/fleet.h"
#include "nn/gemm.h"
#include "nn/int8_policy.h"
#include "nn/kernel_dispatch.h"
#include "nn/policy.h"
#include "nn/quantize.h"

namespace lbchat {
namespace {

using nn::KernelPath;

std::vector<KernelPath> available_paths() {
  std::vector<KernelPath> out{KernelPath::kScalar};
  if (nn::kernel_path_available(KernelPath::kAvx2)) out.push_back(KernelPath::kAvx2);
  if (nn::kernel_path_available(KernelPath::kNeon)) out.push_back(KernelPath::kNeon);
  return out;
}

// --- layer 1: microkernel parity -------------------------------------------

/// Shapes straddling every blocking boundary in the kernels: the 4-row and
/// 4-column register blocks, the 8/16/32-lane SIMD widths, the kGemmKBlock
/// K panel, plus the degenerate m/n/k = 0 and single-row/column cases.
constexpr int kShapes[][3] = {
    {1, 1, 1},  {1, 1, 0},   {0, 3, 4},    {3, 0, 4},    {1, 16, 8},  {4, 16, 64},
    {5, 17, 33}, {8, 8, 8},  {3, 31, 2},   {13, 19, 7},  {6, 64, 128}, {2, 33, 65},
    {7, 1, 129}, {1, 40, 40}, {12, 23, 100}, {4, 48, 63},
};

std::vector<float> random_vec(std::size_t count, Rng& rng, float scale = 1.0f) {
  std::vector<float> v(count);
  for (float& x : v) x = static_cast<float>(rng.normal()) * scale;
  return v;
}

std::vector<std::int8_t> random_s8(std::size_t count, Rng& rng) {
  std::vector<std::int8_t> v(count);
  // Full code range incl. the +/-127 extremes the quantizer clamps to.
  for (auto& x : v) x = static_cast<std::int8_t>(static_cast<long>(rng.next_u64() % 255) - 127);
  return v;
}

/// |got - want| <= tol * max(mag_floor, |want|) elementwise. `mag_floor` is
/// the magnitude the reassociation error actually scales with — roughly
/// k * (term magnitude)² — which exceeds |want| whenever the dot products
/// cancel; without it a well-behaved kernel fails on cancellation-heavy
/// inputs whose *result* happens to be small.
void expect_close(const std::vector<float>& got, const std::vector<float>& want, float tol,
                  float mag_floor, const char* what, int m, int n, int k) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float bound = tol * std::max(mag_floor, std::abs(want[i]));
    EXPECT_LE(std::abs(got[i] - want[i]), bound)
        << what << " " << m << "x" << n << "x" << k << " at " << i << ": got " << got[i]
        << " want " << want[i];
  }
}

void run_parity_for_path(KernelPath path, float scale, float tol) {
  Rng rng{0x5EEDull + static_cast<std::uint64_t>(path) * 977};
  for (const auto& s : kShapes) {
    const int m = s[0], n = s[1], k = s[2];
    const float mag_floor = std::max(1.0f, static_cast<float>(k) * scale * scale);
    // Prefilled C on purpose: every kernel's contract is ACCUMULATION.
    const auto base = random_vec(static_cast<std::size_t>(m) * n, rng, scale);
    {
      const auto a = random_vec(static_cast<std::size_t>(m) * k, rng, scale);
      const auto b = random_vec(static_cast<std::size_t>(k) * n, rng, scale);
      auto c0 = base, c1 = base;
      nn::naive_sgemm(m, n, k, a.data(), b.data(), c0.data());
      nn::sgemm_on(path, m, n, k, a.data(), b.data(), c1.data());
      expect_close(c1, c0, tol, mag_floor, "sgemm", m, n, k);
    }
    {
      const auto a = random_vec(static_cast<std::size_t>(k) * m, rng, scale);
      const auto b = random_vec(static_cast<std::size_t>(k) * n, rng, scale);
      auto c0 = base, c1 = base;
      nn::naive_sgemm_atb(m, n, k, a.data(), b.data(), c0.data());
      nn::sgemm_atb_on(path, m, n, k, a.data(), b.data(), c1.data());
      expect_close(c1, c0, tol, mag_floor, "sgemm_atb", m, n, k);
    }
    {
      const auto a = random_vec(static_cast<std::size_t>(m) * k, rng, scale);
      const auto b = random_vec(static_cast<std::size_t>(n) * k, rng, scale);
      auto c0 = base, c1 = base;
      nn::naive_sgemm_abt(m, n, k, a.data(), b.data(), c0.data());
      nn::sgemm_abt_on(path, m, n, k, a.data(), b.data(), c1.data());
      expect_close(c1, c0, tol, mag_floor, "sgemm_abt", m, n, k);
    }
  }
}

TEST(KernelParity, EveryPathMatchesNaiveOnRandomShapes) {
  for (const KernelPath path : available_paths()) {
    SCOPED_TRACE(std::string{nn::kernel_path_name(path)});
    run_parity_for_path(path, /*scale=*/1.0f, /*tol=*/1e-4f);
  }
}

TEST(KernelParity, DenormalOperandsStayFinite) {
  // ~1e-40 operands: products are far below FLT_MIN, so the kernels chew
  // through denormals (or flush to zero). The assertion is parity + no UB;
  // run under ASan/UBSan in CI.
  for (const KernelPath path : available_paths()) {
    SCOPED_TRACE(std::string{nn::kernel_path_name(path)});
    run_parity_for_path(path, /*scale=*/1e-40f, /*tol=*/1e-4f);
  }
}

TEST(KernelParity, LargeMagnitudeOperands) {
  // ~1e18 operands make ~1e36 products: close enough to FLT_MAX that a
  // careless extra accumulation would overflow, far enough that k <= 128
  // sums stay finite. Relative tolerance absorbs reassociation error.
  for (const KernelPath path : available_paths()) {
    SCOPED_TRACE(std::string{nn::kernel_path_name(path)});
    run_parity_for_path(path, /*scale=*/1e18f, /*tol=*/1e-4f);
  }
}

TEST(KernelParity, RandomRaggedFuzz) {
  // 64 random ragged shapes per path, sizes chosen to keep the naive oracle
  // cheap while crossing the tile boundaries in combinations the fixed list
  // misses.
  for (const KernelPath path : available_paths()) {
    SCOPED_TRACE(std::string{nn::kernel_path_name(path)});
    Rng shapes{0xF0221ull};
    for (int iter = 0; iter < 64; ++iter) {
      const int m = static_cast<int>(shapes.next_u64() % 24);
      const int n = static_cast<int>(shapes.next_u64() % 48);
      const int k = static_cast<int>(shapes.next_u64() % 140);
      Rng rng{0xABCDull + static_cast<std::uint64_t>(iter)};
      const auto base = random_vec(static_cast<std::size_t>(m) * n, rng);
      const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
      const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
      auto c0 = base, c1 = base;
      nn::naive_sgemm(m, n, k, a.data(), b.data(), c0.data());
      nn::sgemm_on(path, m, n, k, a.data(), b.data(), c1.data());
      expect_close(c1, c0, 1e-4f, std::max(1.0f, static_cast<float>(k)), "sgemm(fuzz)", m, n,
                   k);
    }
  }
}

TEST(KernelParity, ScalarSgemmBitExactVsNaiveOnZeroedC) {
  // With C zero-initialized, the scalar sgemm/sgemm_atb kernels perform the
  // naive oracle's additions in the naive order (the blocking only unrolls),
  // so parity is exact to the bit. This is the anchor the committed goldens
  // rest on. (sgemm_abt's 8-lane pinned reduction is deliberately excluded:
  // deterministic, but a different summation order than naive.)
  Rng rng{0xB17ull};
  for (const auto& s : kShapes) {
    const int m = s[0], n = s[1], k = s[2];
    {
      const auto a = random_vec(static_cast<std::size_t>(m) * k, rng);
      const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
      std::vector<float> c0(static_cast<std::size_t>(m) * n, 0.0f), c1 = c0;
      nn::naive_sgemm(m, n, k, a.data(), b.data(), c0.data());
      nn::sgemm_on(KernelPath::kScalar, m, n, k, a.data(), b.data(), c1.data());
      for (std::size_t i = 0; i < c0.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(c0[i]), std::bit_cast<std::uint32_t>(c1[i]))
            << "sgemm " << m << "x" << n << "x" << k << " at " << i;
      }
    }
    {
      const auto a = random_vec(static_cast<std::size_t>(k) * m, rng);
      const auto b = random_vec(static_cast<std::size_t>(k) * n, rng);
      std::vector<float> c0(static_cast<std::size_t>(m) * n, 0.0f), c1 = c0;
      nn::naive_sgemm_atb(m, n, k, a.data(), b.data(), c0.data());
      nn::sgemm_atb_on(KernelPath::kScalar, m, n, k, a.data(), b.data(), c1.data());
      for (std::size_t i = 0; i < c0.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(c0[i]), std::bit_cast<std::uint32_t>(c1[i]))
            << "sgemm_atb " << m << "x" << n << "x" << k << " at " << i;
      }
    }
  }
}

TEST(KernelParity, IgemmBitExactOnEveryPath) {
  // int32 accumulation of int8 products is exact integer arithmetic: every
  // backend must agree with the oracle bit-for-bit, prefilled C included.
  Rng rng{0x18ull};
  const int shapes[][3] = {{1, 1, 1},  {1, 1, 0},  {0, 2, 3},   {4, 0, 3},
                           {1, 12, 31}, {4, 16, 64}, {5, 17, 33}, {9, 23, 300}};
  for (const auto& s : shapes) {
    const int m = s[0], n = s[1], k = s[2];
    const auto a = random_s8(static_cast<std::size_t>(m) * k, rng);
    const auto b = random_s8(static_cast<std::size_t>(n) * k, rng);
    std::vector<std::int32_t> base(static_cast<std::size_t>(m) * n);
    for (auto& x : base) x = static_cast<std::int32_t>(rng.next_u64() % 1000) - 500;
    auto c0 = base;
    nn::naive_igemm_abt(m, n, k, a.data(), b.data(), c0.data());
    for (const KernelPath path : available_paths()) {
      auto c1 = base;
      nn::igemm_abt_on(path, m, n, k, a.data(), b.data(), c1.data());
      EXPECT_EQ(c0, c1) << nn::kernel_path_name(path) << " igemm_abt " << m << "x" << n << "x"
                        << k;
    }
  }
}

TEST(KernelParity, IgemmU8S8BitExactOnConformingInputs) {
  // igemm_abt_u8s8 narrows the contract to A codes in [0,127] (every int8
  // activation tensor: binary BEV input, post-ReLU interiors). On such inputs
  // the signed oracle is the exact answer on every path — including AVX2's
  // vpmaddubsw body, which reads A as unsigned.
  Rng rng{0x85ull};
  const int shapes[][3] = {{1, 1, 1},   {1, 1, 0},   {0, 2, 3},   {4, 0, 3},
                           {1, 12, 31}, {4, 16, 64}, {5, 17, 33}, {9, 23, 300},
                           {64, 8, 64}, {3, 7, 96}};
  for (const auto& s : shapes) {
    const int m = s[0], n = s[1], k = s[2];
    auto a = random_s8(static_cast<std::size_t>(m) * k, rng);
    for (auto& v : a) v = static_cast<std::int8_t>(std::abs(static_cast<int>(v)) % 128);
    const auto b = random_s8(static_cast<std::size_t>(n) * k, rng);
    std::vector<std::int32_t> base(static_cast<std::size_t>(m) * n);
    for (auto& x : base) x = static_cast<std::int32_t>(rng.next_u64() % 1000) - 500;
    auto c0 = base;
    nn::naive_igemm_abt(m, n, k, a.data(), b.data(), c0.data());
    for (const KernelPath path : available_paths()) {
      auto c1 = base;
      nn::igemm_abt_u8s8_on(path, m, n, k, a.data(), b.data(), c1.data());
      EXPECT_EQ(c0, c1) << nn::kernel_path_name(path) << " igemm_abt_u8s8 " << m << "x" << n
                        << "x" << k;
    }
  }
}

TEST(KernelParity, IgemmU8S8SaturationEdge) {
  // Worst conforming case: a = 127, b alternating +/-127 over a K long
  // enough to cross the 32-byte vpmaddubsw main loop, the 16-byte step, and
  // the scalar tail (k = 77). Pairwise i16 sums reach +/-32258, just inside
  // int16 — exactness here is what makes the u8s8 shortcut legal at all.
  const int m = 3, n = 5, k = 77;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m) * k, 127);
  std::vector<std::int8_t> b(static_cast<std::size_t>(n) * k);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = (i % 2 == 0) ? 127 : -127;
  std::vector<std::int32_t> c0(static_cast<std::size_t>(m) * n, 0);
  nn::naive_igemm_abt(m, n, k, a.data(), b.data(), c0.data());
  for (const KernelPath path : available_paths()) {
    std::vector<std::int32_t> c1(static_cast<std::size_t>(m) * n, 0);
    nn::igemm_abt_u8s8_on(path, m, n, k, a.data(), b.data(), c1.data());
    EXPECT_EQ(c0, c1) << nn::kernel_path_name(path);
  }
}

TEST(KernelParity, IgemmSaturatedOperandsDoNotOverflow) {
  // Worst case codes: all +/-127 over a long K. 127*127*512 ~= 8.3e6, far
  // inside int32, and the AVX2 madd-pair path must not wrap int16 either
  // (its pairwise sums reach 2*127*127 = 32258 < 32767).
  const int m = 3, n = 5, k = 512;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m) * k, 127);
  std::vector<std::int8_t> b(static_cast<std::size_t>(n) * k);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = (i % 2 == 0) ? 127 : -127;
  std::vector<std::int32_t> c0(static_cast<std::size_t>(m) * n, 0);
  nn::naive_igemm_abt(m, n, k, a.data(), b.data(), c0.data());
  for (const KernelPath path : available_paths()) {
    std::vector<std::int32_t> c1(static_cast<std::size_t>(m) * n, 0);
    nn::igemm_abt_on(path, m, n, k, a.data(), b.data(), c1.data());
    EXPECT_EQ(c0, c1) << nn::kernel_path_name(path);
  }
}

// --- layer 2: dispatch plumbing --------------------------------------------

TEST(KernelDispatch, ScalarAlwaysAvailableAndBestIsAvailable) {
  EXPECT_TRUE(nn::kernel_path_available(KernelPath::kScalar));
  EXPECT_TRUE(nn::kernel_path_available(nn::best_kernel_path()));
  EXPECT_TRUE(nn::kernel_path_available(nn::active_kernel_path()));
}

TEST(KernelDispatch, NamesRoundTripThroughParse) {
  for (const KernelPath p : {KernelPath::kScalar, KernelPath::kAvx2, KernelPath::kNeon}) {
    const auto parsed = nn::parse_kernel_path(nn::kernel_path_name(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(nn::parse_kernel_path("auto"), std::nullopt);
  EXPECT_EQ(nn::parse_kernel_path(""), std::nullopt);
  EXPECT_EQ(nn::parse_kernel_path("AVX2"), std::nullopt);
  EXPECT_EQ(nn::parse_kernel_path("sse42"), std::nullopt);
}

TEST(KernelDispatch, SetKernelPathRejectsUnavailablePaths) {
  for (const KernelPath p : {KernelPath::kAvx2, KernelPath::kNeon}) {
    if (nn::kernel_path_available(p)) continue;
    EXPECT_THROW(nn::set_kernel_path(p), std::invalid_argument);
    EXPECT_THROW(
        nn::sgemm_on(p, 0, 0, 0, nullptr, nullptr, nullptr), std::invalid_argument);
  }
}

TEST(KernelDispatch, ScopedOverrideRestores) {
  const KernelPath before = nn::active_kernel_path();
  {
    nn::ScopedKernelPath guard{KernelPath::kScalar};
    EXPECT_EQ(nn::active_kernel_path(), KernelPath::kScalar);
  }
  EXPECT_EQ(nn::active_kernel_path(), before);
}

TEST(KernelDispatch, CacheKeySaltIsIdentityOnScalarOnly) {
  const std::uint64_t key = 0xB64685EC8CDC8984ull;
  {
    nn::ScopedKernelPath guard{KernelPath::kScalar};
    // Scalar produced every historical cache entry; its keys must not move.
    EXPECT_EQ(nn::salt_with_kernel_path(key), key);
  }
  for (const KernelPath p : available_paths()) {
    if (p == KernelPath::kScalar) continue;
    nn::ScopedKernelPath guard{p};
    const std::uint64_t salted = nn::salt_with_kernel_path(key);
    EXPECT_NE(salted, key) << nn::kernel_path_name(p);
    // Deterministic: the same path salts the same key to the same value.
    EXPECT_EQ(salted, nn::salt_with_kernel_path(key));
  }
}

// --- layers 3 & 4: engine determinism spine + the int8 knob ----------------

/// Tiny fleet: a second or two per run.
engine::ScenarioConfig tiny_cfg(std::uint64_t seed) {
  engine::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.num_vehicles = 3;
  cfg.world.num_background_cars = 4;
  cfg.world.num_pedestrians = 6;
  cfg.collect_duration_s = 30.0;
  cfg.collect_fps = 1.0;
  cfg.eval_frames_per_vehicle = 2;
  cfg.duration_s = 30.0;
  cfg.eval_interval_s = 10.0;
  cfg.train_interval_s = 2.0;
  cfg.batch_size = 4;
  cfg.coreset_size = 12;
  cfg.pair_cooldown_s = 5.0;
  cfg.time_budget_s = 8.0;
  cfg.radio.max_range_m = 400.0;
  cfg.wire.model_bytes = 4ull * 1024 * 1024;
  cfg.wire.coreset_bytes_per_sample = 1024;
  return cfg;
}

engine::FleetSim make_sim(const engine::ScenarioConfig& cfg, const char* approach = "LbChat") {
  return engine::FleetSim{cfg, baselines::registry().make(approach, {})};
}

std::vector<std::uint64_t> curve_bits(const engine::RunMetrics& m) {
  std::vector<std::uint64_t> bits;
  for (std::size_t i = 0; i < m.loss_curve.size(); ++i) {
    bits.push_back(std::bit_cast<std::uint64_t>(m.loss_curve.times[i]));
    bits.push_back(std::bit_cast<std::uint64_t>(m.loss_curve.values[i]));
  }
  return bits;
}

std::vector<std::uint8_t> checkpoint_of(const engine::FleetSim& sim) {
  ByteWriter w;
  sim.save_checkpoint(w);
  return w.bytes();
}

class KernelEnginePathTest : public ::testing::TestWithParam<KernelPath> {};

TEST_P(KernelEnginePathTest, ThreadCountBitIdentity) {
  const KernelPath path = GetParam();
  if (!nn::kernel_path_available(path)) GTEST_SKIP() << "path unavailable on this build/CPU";
  nn::ScopedKernelPath guard{path};
  engine::ScenarioConfig cfg = tiny_cfg(41);
  cfg.num_threads = 1;
  auto one = make_sim(cfg).run();
  cfg.num_threads = 4;
  auto four = make_sim(cfg).run();
  EXPECT_EQ(curve_bits(one), curve_bits(four));
}

TEST_P(KernelEnginePathTest, CheckpointResumeBitIdentity) {
  const KernelPath path = GetParam();
  if (!nn::kernel_path_available(path)) GTEST_SKIP() << "path unavailable on this build/CPU";
  nn::ScopedKernelPath guard{path};
  const engine::ScenarioConfig cfg = tiny_cfg(43);

  auto straight = make_sim(cfg);
  straight.prepare();
  straight.run_until(cfg.duration_s);
  const auto m_straight = straight.finalize();

  auto first = make_sim(cfg);
  first.prepare();
  first.run_until(15.0);
  const auto bytes = checkpoint_of(first);
  auto resumed = make_sim(cfg);
  ByteReader r{bytes};
  ASSERT_EQ(resumed.restore(r), engine::CkptStatus::kOk);
  resumed.run_until(cfg.duration_s);
  const auto m_resumed = resumed.finalize();

  EXPECT_EQ(curve_bits(m_straight), curve_bits(m_resumed));
}

INSTANTIATE_TEST_SUITE_P(AllPaths, KernelEnginePathTest,
                         ::testing::Values(KernelPath::kScalar, KernelPath::kAvx2,
                                           KernelPath::kNeon),
                         [](const auto& info) {
                           return std::string{nn::kernel_path_name(info.param)};
                         });

TEST(Int8EvalKnob, OffIsBitInert) {
  // Flag off must be indistinguishable from a build that never heard of the
  // int8 path: same fingerprint, same checkpoint bytes, same loss bits.
  nn::ScopedKernelPath guard{KernelPath::kScalar};
  const engine::ScenarioConfig base = tiny_cfg(47);
  engine::ScenarioConfig off = base;
  off.int8_eval.enabled = false;
  off.int8_eval.value_scoring = false;  // sub-knobs are dead while disabled
  off.int8_eval.eval_loss = false;

  EXPECT_EQ(scenario_fingerprint(base, "LbChat"), scenario_fingerprint(off, "LbChat"));

  auto sim_base = make_sim(base);
  sim_base.prepare();
  sim_base.run_until(base.duration_s);
  const auto ckpt_base = checkpoint_of(sim_base);
  const auto m_base = sim_base.finalize();

  auto sim_off = make_sim(off);
  sim_off.prepare();
  sim_off.run_until(off.duration_s);
  const auto ckpt_off = checkpoint_of(sim_off);
  const auto m_off = sim_off.finalize();

  EXPECT_EQ(ckpt_base, ckpt_off);
  EXPECT_EQ(curve_bits(m_base), curve_bits(m_off));
}

TEST(Int8EvalKnob, DefaultFingerprintStillPinned) {
  // The Int8EvalConfig member must not have moved the historical digest
  // (tests/fingerprint_test.cpp pins the same value; double-anchored here
  // because this suite is the one CI runs per kernel path).
  engine::ScenarioConfig cfg;
  EXPECT_EQ(scenario_fingerprint(cfg, "LbChat"), 0xB64685EC8CDC8984ull);
}

TEST(Int8EvalKnob, OnSplitsFingerprintAndChangesLosses) {
  nn::ScopedKernelPath guard{KernelPath::kScalar};
  const engine::ScenarioConfig base = tiny_cfg(53);
  engine::ScenarioConfig on = base;
  on.int8_eval.enabled = true;

  EXPECT_NE(scenario_fingerprint(on, "LbChat"), scenario_fingerprint(base, "LbChat"));
  // Sub-knobs are live once enabled.
  engine::ScenarioConfig values_off = on;
  values_off.int8_eval.value_scoring = false;
  EXPECT_NE(scenario_fingerprint(values_off, "LbChat"), scenario_fingerprint(on, "LbChat"));
  engine::ScenarioConfig loss_off = on;
  loss_off.int8_eval.eval_loss = false;
  EXPECT_NE(scenario_fingerprint(loss_off, "LbChat"), scenario_fingerprint(on, "LbChat"));

  const auto m_on = make_sim(on).run();
  const auto m_base = make_sim(base).run();
  // The quantized eval really is a different measurement.
  EXPECT_NE(curve_bits(m_on), curve_bits(m_base));
}

TEST(Int8EvalKnob, OnIsThreadCountBitIdentical) {
  nn::ScopedKernelPath guard{KernelPath::kScalar};
  engine::ScenarioConfig cfg = tiny_cfg(59);
  cfg.int8_eval.enabled = true;
  cfg.num_threads = 1;
  const auto one = make_sim(cfg).run();
  cfg.num_threads = 4;
  const auto four = make_sim(cfg).run();
  EXPECT_EQ(curve_bits(one), curve_bits(four));
}

// --- int8 forward-path accuracy --------------------------------------------

data::Sample make_sample(Rng& rng, data::Command cmd) {
  data::Sample s;
  s.bev = data::BevGrid{data::kDefaultBevSpec};
  for (auto& c : s.bev.cells) c = rng.chance(0.2) ? 1 : 0;
  s.command = cmd;
  for (auto& w : s.waypoints) w = static_cast<float>(rng.uniform(-0.5, 0.5));
  s.id = rng.next_u64();
  return s;
}

TEST(Int8Policy, QuantizerRoundTripBound) {
  // |x - dequant(quant(x))| <= scale/2 per coordinate (round-to-nearest
  // symmetric absmax), scale = rowmax/127.
  Rng rng{61};
  const std::size_t rows = 7, row_len = 33;
  std::vector<float> w(rows * row_len);
  for (float& x : w) x = static_cast<float>(rng.normal());
  const nn::Int8Rows q = nn::quantize_rows_s8(w, row_len);
  ASSERT_EQ(q.codes.size(), w.size());
  ASSERT_EQ(q.scales.size(), rows);
  for (std::size_t r = 0; r < rows; ++r) {
    float absmax = 0.0f;
    for (std::size_t j = 0; j < row_len; ++j) {
      absmax = std::max(absmax, std::abs(w[r * row_len + j]));
    }
    EXPECT_NEAR(q.scales[r], absmax / 127.0f, 1e-9f);
    for (std::size_t j = 0; j < row_len; ++j) {
      const float back = static_cast<float>(q.codes[r * row_len + j]) * q.scales[r];
      EXPECT_LE(std::abs(back - w[r * row_len + j]), q.scales[r] * 0.5f + 1e-7f);
    }
  }
}

TEST(Int8Policy, AllZeroRowsQuantizeToZero) {
  const std::vector<float> w(4 * 8, 0.0f);
  const nn::Int8Rows q = nn::quantize_rows_s8(w, 8);
  for (const float s : q.scales) EXPECT_EQ(s, 0.0f);
  for (const auto c : q.codes) EXPECT_EQ(c, 0);
  std::vector<std::int8_t> codes(8);
  EXPECT_EQ(nn::quantize_tensor_s8(std::vector<float>(8, 0.0f), codes.data()), 0.0f);
  for (const auto c : codes) EXPECT_EQ(c, 0);
}

TEST(Int8Policy, PredictTracksFloatPolicy) {
  // No analytic bound survives two ReLU layers cleanly, so assert the
  // empirical contract the eval path relies on: int8 predictions stay close
  // to float ones relative to the activation magnitudes (~1% of the output
  // scale for this 8-bit scheme), and the loss measurement stays close.
  const nn::DrivingPolicy p{{}, 71};
  const nn::Int8Policy q{p};
  Rng rng{73};
  for (int i = 0; i < 16; ++i) {
    const auto s = make_sample(rng, i % 2 == 0 ? data::Command::kFollow : data::Command::kLeft);
    const auto yf = p.predict(s.bev, s.command);
    const auto yq = q.predict(s.bev, s.command);
    ASSERT_EQ(yf.size(), yq.size());
    float out_scale = 1e-3f;
    for (std::size_t j = 0; j < yf.size(); ++j) out_scale = std::max(out_scale, std::abs(yf[j]));
    for (std::size_t j = 0; j < yf.size(); ++j) {
      EXPECT_LE(std::abs(yf[j] - yq[j]), 0.05f * out_scale + 1e-3f) << "sample " << i;
    }
    EXPECT_NEAR(q.sample_loss(s), p.sample_loss(s), 0.05 * (1.0 + p.sample_loss(s)));
  }
}

TEST(Int8Policy, WeightedLossMirrorsFloatReduction) {
  const nn::DrivingPolicy p{{}, 79};
  const nn::Int8Policy q{p};
  Rng rng{83};
  std::vector<data::Sample> samples;
  for (int i = 0; i < 6; ++i) samples.push_back(make_sample(rng, data::Command::kRight));
  const std::vector<double> weights{1.0, 0.5, 2.0, 0.0, 1.5, 3.0};
  // Same reduction order as the float policy: evaluating twice is bit-equal
  // (thread-count invariance upstream rests on this).
  EXPECT_EQ(std::bit_cast<std::uint64_t>(q.weighted_loss(samples, weights)),
            std::bit_cast<std::uint64_t>(q.weighted_loss(samples, weights)));
  EXPECT_NEAR(q.weighted_loss(samples, weights), p.weighted_loss(samples, weights),
              0.05 * (1.0 + p.weighted_loss(samples, weights)));
}

TEST(Int8Policy, BitIdenticalAcrossDispatchPaths) {
  // The quantized forward pass runs on exact integer GEMM; the float layers
  // around it are elementwise. An int8 evaluation is therefore reproducible
  // bit-for-bit on every dispatch path — the property that lets --int8-eval
  // compose with any --kernel.
  const nn::DrivingPolicy p{{}, 89};
  const nn::Int8Policy q{p};
  Rng rng{97};
  const auto s = make_sample(rng, data::Command::kStraight);
  std::optional<std::uint64_t> want;
  for (const KernelPath path : available_paths()) {
    nn::ScopedKernelPath guard{path};
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(q.sample_loss(s));
    if (!want.has_value()) want = bits;
    EXPECT_EQ(bits, *want) << nn::kernel_path_name(path);
  }
}

TEST(Int8Policy, ParamNormMatchesDequantizedWeights) {
  const nn::DrivingPolicy p{{}, 101};
  const nn::Int8Policy q{p};
  const double float_norm = nn::param_l2_norm(p.params());
  // The dequantized norm is the float norm up to quantization error.
  EXPECT_NEAR(q.param_l2_norm(), float_norm, 0.01 * (1.0 + float_norm));
  EXPECT_GT(q.param_l2_norm(), 0.0);
}

}  // namespace
}  // namespace lbchat
