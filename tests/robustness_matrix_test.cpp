// Scenario × strategy robustness matrix regression test.
//
// Two layers of protection:
//  1. Every cell's behavioural digest must match the committed golden
//     (tests/goldens/robustness_matrix.golden) bit-for-bit — any change to
//     the adversary, heterogeneity, aggregation, or engine behaviour shows up
//     as a digest mismatch. Regenerate intentionally with
//     tools/run_robustness_matrix.
//  2. The headline robustness claims are asserted directly on the measured
//     values, so the matrix cannot silently golden-pin a regression: under
//     25% sign-flip attackers, LbChat's honest-cohort loss degrades strictly
//     less than DP's and DFL-DDS's, and LbChat grants attackers measurably
//     less aggregate merge weight than the uniform baseline (= the Byzantine
//     fraction).
#include "robustness_matrix.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace lbchat::robustness {
namespace {

using CellMap = std::map<std::string, CellResult>;

/// Runs the full matrix once for the whole suite (cells are independent —
/// tracing is off — but they are not cheap).
const CellMap& all_cells() {
  static const CellMap cells = [] {
    CellMap m;
    for (const MatrixScenario& sc : kMatrixScenarios) {
      for (const char* approach : kApproaches) {
        CellResult cell = run_matrix_cell(sc, approach);
        m[cell.scenario + "/" + cell.approach] = std::move(cell);
      }
    }
    return m;
  }();
  return cells;
}

TEST(RobustnessMatrix, DigestsMatchCommitted) {
  const std::string path = std::string{LBCHAT_GOLDEN_DIR} + "/robustness_matrix.golden";
  std::ifstream in{path};
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate with tools/run_robustness_matrix";
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string committed = ss.str();

  std::string actual;
  for (const MatrixScenario& sc : kMatrixScenarios) {
    for (const char* approach : kApproaches) {
      actual += all_cells().at(std::string{sc.name} + "/" + approach).digest + "\n";
    }
  }
  EXPECT_EQ(committed, actual)
      << "robustness-matrix digest mismatch — if the behaviour change is "
         "intentional, regenerate with tools/run_robustness_matrix "
      << path;
}

TEST(RobustnessMatrix, CleanCellsHaveNoAdversaryFootprint) {
  for (const char* approach : kApproaches) {
    const CellResult& c = all_cells().at(std::string{"clean/"} + approach);
    EXPECT_EQ(c.byzantine_payloads, 0) << approach;
    EXPECT_EQ(c.straggler_skips, 0) << approach;
    EXPECT_EQ(c.attacker_share, 0.0) << approach;
    EXPECT_EQ(c.final_loss, c.honest_final_loss) << approach;
  }
}

TEST(RobustnessMatrix, ByzantineCellsRecordAttackTraffic) {
  for (const char* scenario : {"byz12", "byz25", "byzfaults"}) {
    for (const char* approach : kApproaches) {
      const CellResult& c = all_cells().at(std::string{scenario} + "/" + approach);
      EXPECT_GT(c.byzantine_payloads, 0) << scenario << "/" << approach;
    }
  }
  // LbChat exchanges three frame kinds (assist, coreset, model), so its
  // attackers get strictly more mutation opportunities than the model-only
  // gossip baselines.
  EXPECT_GT(all_cells().at("byz25/LbChat").byzantine_payloads,
            all_cells().at("byz25/DP").byzantine_payloads);
}

TEST(RobustnessMatrix, StragglerCellSkipsTraining) {
  for (const char* approach : kApproaches) {
    const CellResult& c = all_cells().at(std::string{"stragglers/"} + approach);
    EXPECT_GT(c.straggler_skips, 0) << approach;
    EXPECT_EQ(c.byzantine_payloads, 0) << approach;
  }
}

// The acceptance headline: with 25% sign-flip attackers, LbChat's
// honest-cohort eval loss degrades strictly less than DP's and DFL-DDS's
// (degradation measured against each strategy's own clean-cell baseline).
TEST(RobustnessMatrix, LbChatHonestCohortDegradesLeastUnderByz25) {
  const auto degradation = [&](const char* approach) {
    const double clean = all_cells().at(std::string{"clean/"} + approach).final_loss;
    const double attacked =
        all_cells().at(std::string{"byz25/"} + approach).honest_final_loss;
    return attacked - clean;
  };
  const double lbchat = degradation("LbChat");
  const double dp = degradation("DP");
  const double dfl = degradation("DFL-DDS");
  std::printf("byz25 honest-cohort degradation: LbChat=%.6f DP=%.6f DFL-DDS=%.6f\n", lbchat,
              dp, dfl);
  EXPECT_LT(lbchat, dp);
  EXPECT_LT(lbchat, dfl);
}

// The defense mechanism behind the headline: LbChat's coreset-value scoring
// grants attackers measurably less aggregate merge weight than the uniform
// baseline (= the Byzantine fraction, what a value-blind averager converges
// to), and less than the loss-blind DFL-DDS weighting does.
TEST(RobustnessMatrix, LbChatAttackerWeightShareBelowUniform) {
  const double lbchat = all_cells().at("byz25/LbChat").attacker_share;
  const double dfl = all_cells().at("byz25/DFL-DDS").attacker_share;
  std::printf("byz25 attacker weight share: LbChat=%.4f DFL-DDS=%.4f uniform=0.25\n", lbchat,
              dfl);
  EXPECT_GT(lbchat, 0.0);       // some attacker mass does land...
  EXPECT_LT(lbchat, 0.8 * 0.25);  // ...but measurably below the uniform share
  EXPECT_LT(lbchat, dfl);
}

}  // namespace
}  // namespace lbchat::robustness
