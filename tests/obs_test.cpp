// Tests for the observability subsystem: metrics-registry snapshot
// determinism (1 writer thread vs 4), event-ring drop semantics, exporter
// well-formedness, and the engine-level contract — enabling observability
// never changes simulation results, and the sim-time exports (events JSONL,
// metrics JSON) are byte-identical at any worker thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/factory.h"
#include "engine/fleet.h"
#include "engine/report.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace lbchat {
namespace {

// ------------------------------------------------------------- registry

TEST(MetricsRegistryTest, CounterGaugeHistogramRoundTrip) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("chats");
  const auto g = reg.gauge("rate");
  const std::vector<double> bounds{1.0, 2.0, 5.0};
  const auto h = reg.histogram("latency", bounds);

  reg.add(c, 3);
  reg.add(c);
  reg.set(g, 0.25);
  reg.set(g, 0.75);  // last write wins
  reg.observe(h, 0.5);
  reg.observe(h, 1.5);
  reg.observe(h, 100.0);

  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  // Name-sorted.
  EXPECT_EQ(snap.metrics[0].name, "chats");
  EXPECT_EQ(snap.metrics[1].name, "latency");
  EXPECT_EQ(snap.metrics[2].name, "rate");

  const obs::MetricValue* chats = snap.find("chats");
  ASSERT_NE(chats, nullptr);
  EXPECT_EQ(chats->kind, obs::MetricKind::kCounter);
  EXPECT_EQ(chats->count, 4u);

  const obs::MetricValue* rate = snap.find("rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->value, 0.75);

  const obs::MetricValue* lat = snap.find("latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 3u);
  EXPECT_DOUBLE_EQ(lat->value, 102.0);  // integer-microunit sum is exact here
  ASSERT_EQ(lat->buckets.size(), 4u);   // 3 bounds + overflow
  EXPECT_EQ(lat->buckets[0], 1u);
  EXPECT_EQ(lat->buckets[1], 1u);
  EXPECT_EQ(lat->buckets[2], 0u);
  EXPECT_EQ(lat->buckets[3], 1u);

  EXPECT_EQ(snap.find("absent"), nullptr);
}

TEST(MetricsRegistryTest, SameNameDifferentKindThrows) {
  obs::MetricsRegistry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("x", std::vector<double>{1.0}), std::invalid_argument);
  // Re-registering with the matching kind returns the same slot.
  EXPECT_EQ(reg.counter("x").slot, reg.counter("x").slot);
}

TEST(MetricsRegistryTest, SnapshotIdenticalForOneAndFourWriterThreads) {
  const std::vector<double> bounds{0.5, 1.5, 2.5};
  constexpr int kOps = 4000;
  const auto workload = [&](obs::MetricsRegistry& reg, int num_threads) {
    const auto c = reg.counter("work.items");
    const auto h = reg.histogram("work.cost", bounds);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(num_threads));
    for (int w = 0; w < num_threads; ++w) {
      workers.emplace_back([&, w] {
        for (int i = w; i < kOps; i += num_threads) {
          reg.add(c, static_cast<std::uint64_t>(i % 3));
          reg.observe(h, static_cast<double>(i % 7) * 0.5);
        }
      });
    }
    for (auto& t : workers) t.join();
  };

  obs::MetricsRegistry serial;
  workload(serial, 1);
  obs::MetricsRegistry sharded;
  workload(sharded, 4);

  const obs::Snapshot a = serial.snapshot();
  const obs::Snapshot b = sharded.snapshot();
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].name, b.metrics[i].name);
    EXPECT_EQ(a.metrics[i].kind, b.metrics[i].kind);
    EXPECT_EQ(a.metrics[i].count, b.metrics[i].count);
    EXPECT_DOUBLE_EQ(a.metrics[i].value, b.metrics[i].value);
    EXPECT_EQ(a.metrics[i].bounds, b.metrics[i].bounds);
    EXPECT_EQ(a.metrics[i].buckets, b.metrics[i].buckets);
  }
}

TEST(MetricsRegistryTest, ResetValuesKeepsDefinitionsAndHandles) {
  obs::MetricsRegistry reg;
  const auto c = reg.counter("c");
  reg.add(c, 9);
  reg.reset_values();
  const obs::Snapshot snap = reg.snapshot();
  const obs::MetricValue* m = snap.find("c");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 0u);
  reg.add(c, 2);  // old handle still valid
  EXPECT_EQ(reg.snapshot().find("c")->count, 2u);
}

// -------------------------------------------------------------- event ring

TEST(EventTracerTest, DropOldestKeepsNewestAndCountsDrops) {
  obs::EventTracer tr;
  tr.set_capacity(4);
  for (int i = 0; i < 7; ++i) {
    tr.emit(obs::Event{static_cast<double>(i), obs::EventKind::kRound, i, -1, 0.0});
  }
  const std::vector<obs::Event> ev = tr.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(tr.dropped(), 3u);
  for (int i = 0; i < 4; ++i) {  // oldest-first, the first three are gone
    EXPECT_EQ(ev[static_cast<std::size_t>(i)].a, i + 3);
    EXPECT_DOUBLE_EQ(ev[static_cast<std::size_t>(i)].t, static_cast<double>(i + 3));
  }
  tr.clear();
  EXPECT_TRUE(tr.events().empty());
  EXPECT_EQ(tr.dropped(), 0u);
}

// ------------------------------------------------------------- engine runs

engine::ScenarioConfig traced_scenario() {
  engine::ScenarioConfig cfg;
  cfg.num_vehicles = 6;
  cfg.collect_duration_s = 120.0;
  cfg.duration_s = 300.0;
  cfg.eval_interval_s = 100.0;
  cfg.coreset_size = 50;
  cfg.pair_cooldown_s = 30.0;
  cfg.world.num_background_cars = 8;
  cfg.world.num_pedestrians = 16;
  // Some churn so fault events show up in the trace too.
  cfg.faults.churn_rate_per_min = 2.0;
  cfg.faults.churn_offline_mean_s = 15.0;
  return cfg;
}

/// Global-state fixture: every test starts and ends with observability fully
/// disabled and empty, so tests cannot leak events into each other.
class ObsEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm(); }
  void TearDown() override { disarm(); }

  static void disarm() {
    obs::set_events_enabled(false);
    obs::set_spans_enabled(false);
    obs::reset();
  }

  struct Capture {
    engine::RunMetrics m;
    std::string events;
    std::string metrics;
  };

  static Capture run_traced(const engine::ScenarioConfig& cfg, int threads) {
    obs::reset();
    obs::set_events_enabled(true);
    auto c = cfg;
    c.num_threads = threads;
    engine::FleetSim sim{c, baselines::make_strategy(baselines::Approach::kLbChat)};
    Capture cap;
    cap.m = sim.run();
    cap.events = obs::events_jsonl(obs::tracer().events(), obs::tracer().dropped());
    cap.metrics = obs::metrics_json(obs::registry().snapshot());
    obs::set_events_enabled(false);
    return cap;
  }
};

TEST_F(ObsEngineTest, SimTimeExportsByteIdenticalAcrossThreadCounts) {
  const auto cfg = traced_scenario();
  const Capture one = run_traced(cfg, 1);
  const Capture four = run_traced(cfg, 4);
  // Events come only from the single-threaded tick path, so the export is a
  // pure function of the scenario.
  EXPECT_EQ(one.events, four.events);
  EXPECT_EQ(one.metrics, four.metrics);
  // The run actually produced a trace worth comparing.
  EXPECT_NE(one.events.find("\"chat_start\""), std::string::npos);
  EXPECT_NE(one.events.find("\"eval\""), std::string::npos);
  EXPECT_NE(one.events.find("\"churn_offline\""), std::string::npos);
}

TEST_F(ObsEngineTest, EnablingObservabilityIsBitInert) {
  const auto cfg = traced_scenario();

  obs::reset();  // both flags off: the default production configuration
  engine::FleetSim off{cfg, baselines::make_strategy(baselines::Approach::kLbChat)};
  const engine::RunMetrics m_off = off.run();
  EXPECT_TRUE(obs::tracer().events().empty());

  obs::set_events_enabled(true);
  obs::set_spans_enabled(true);
  engine::FleetSim on{cfg, baselines::make_strategy(baselines::Approach::kLbChat)};
  const engine::RunMetrics m_on = on.run();

  EXPECT_EQ(m_off.train_steps, m_on.train_steps);
  EXPECT_EQ(m_off.transfers.bytes_delivered, m_on.transfers.bytes_delivered);
  ASSERT_EQ(m_off.loss_curve.size(), m_on.loss_curve.size());
  for (std::size_t i = 0; i < m_off.loss_curve.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(m_off.loss_curve.values[i]),
              std::bit_cast<std::uint64_t>(m_on.loss_curve.values[i]))
        << "loss curve diverged at sample " << i;
  }
}

TEST_F(ObsEngineTest, ChromeTraceValidatesAndReportCoversFleet) {
  auto cfg = traced_scenario();
  obs::reset();
  obs::set_events_enabled(true);
  obs::set_spans_enabled(true);
  cfg.num_threads = 2;
  engine::FleetSim sim{cfg, baselines::make_strategy(baselines::Approach::kLbChat)};
  const engine::RunMetrics m = sim.run();

  const std::string trace =
      obs::chrome_trace_json(obs::tracer().events(), obs::spans().spans());
  EXPECT_EQ(obs::validate_chrome_trace(trace), "");

  // The validator is not a rubber stamp.
  EXPECT_NE(obs::validate_chrome_trace("{"), "");
  EXPECT_NE(obs::validate_chrome_trace("[1,2,3]"), "");
  EXPECT_NE(obs::validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"i\"}]}"), "");

  const obs::RunReport report = engine::build_run_report("LbChat", cfg, m);
  ASSERT_EQ(report.vehicles.size(), static_cast<std::size_t>(cfg.num_vehicles));
  EXPECT_EQ(report.approach, "LbChat");
  double bytes = 0.0;
  for (const obs::VehicleReport& v : report.vehicles) {
    EXPECT_LE(v.online_seconds, cfg.duration_s + 1e-9);
    bytes += static_cast<double>(v.bytes_received);
  }
  EXPECT_GT(bytes, 0.0);  // per-vehicle accounting saw the transfers

  // CSV: one header plus one row per vehicle.
  const std::string csv = obs::run_report_csv(report);
  const auto lines = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, report.vehicles.size() + 1);
}

}  // namespace
}  // namespace lbchat
