// Unit tests for top-k sparsification (paper §III-C) and its wire format.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bytes.h"
#include "nn/compress.h"
#include "common/rng.h"
#include "nn/model_io.h"

namespace lbchat::nn {
namespace {

TEST(TopKTest, KeepsLargestMagnitudes) {
  const std::vector<float> params{0.1f, -5.0f, 0.3f, 2.0f, -0.2f, 1.0f, 0.0f, -0.05f};
  const SparseModel m = top_k_sparsify(params, 3);
  ASSERT_EQ(m.indices.size(), 3u);
  EXPECT_FALSE(m.dense);
  // Largest magnitudes are -5, 2, 1 at indices 1, 3, 5 (sorted ascending).
  EXPECT_EQ(m.indices, (std::vector<std::uint32_t>{1, 3, 5}));
  EXPECT_FLOAT_EQ(m.values[0], -5.0f);
  EXPECT_FLOAT_EQ(m.values[1], 2.0f);
  EXPECT_FLOAT_EQ(m.values[2], 1.0f);
}

TEST(TopKTest, DensifyFillsZeros) {
  const std::vector<float> params{1.0f, -2.0f, 3.0f, -4.0f};
  const SparseModel m = top_k_sparsify(params, 1);
  const auto dense = m.densify();
  ASSERT_EQ(dense.size(), 4u);
  EXPECT_FLOAT_EQ(dense[3], -4.0f);
  EXPECT_FLOAT_EQ(dense[0], 0.0f);
  EXPECT_FLOAT_EQ(dense[1], 0.0f);
  EXPECT_FLOAT_EQ(dense[2], 0.0f);
}

TEST(TopKTest, ZeroKTransmitsNothing) {
  const std::vector<float> params{1.0f, 2.0f};
  const SparseModel m = top_k_sparsify(params, 0);
  EXPECT_TRUE(m.indices.empty());
  EXPECT_FALSE(m.dense);
  const auto dense = m.densify();
  EXPECT_FLOAT_EQ(dense[0], 0.0f);
  EXPECT_DOUBLE_EQ(m.psi(), 0.0);
}

TEST(TopKTest, LargeKFallsBackToDense) {
  std::vector<float> params(100);
  for (std::size_t i = 0; i < params.size(); ++i) params[i] = static_cast<float>(i);
  // k > dim/2 means index-value pairs are no smaller than dense encoding.
  const SparseModel m = top_k_sparsify(params, 60);
  EXPECT_TRUE(m.dense);
  EXPECT_EQ(m.densify(), params);
  EXPECT_DOUBLE_EQ(m.psi(), 1.0);
}

TEST(TopKTest, PsiToKRelation) {
  EXPECT_EQ(top_k_for_psi(0.0, 1000), 0u);
  EXPECT_EQ(top_k_for_psi(1.0, 1000), 1000u);
  // psi = 2k/dim so k = psi*dim/2.
  EXPECT_EQ(top_k_for_psi(0.5, 1000), 250u);
  EXPECT_EQ(top_k_for_psi(0.1, 1000), 50u);
}

TEST(TopKTest, AchievedPsiMatchesRequested) {
  std::vector<float> params(27288);
  Rng rng{3};
  for (float& v : params) v = static_cast<float>(rng.normal());
  for (const double psi : {0.1, 0.25, 0.5, 0.9}) {
    const SparseModel m = compress_for_psi(params, psi);
    EXPECT_NEAR(m.psi(), psi, 0.01) << "psi=" << psi;
  }
}

TEST(TopKTest, LogicalBytesMonotonicInPsi) {
  std::vector<float> params(10000);
  Rng rng{5};
  for (float& v : params) v = static_cast<float>(rng.normal());
  std::size_t prev = 0;
  for (const double psi : {0.05, 0.2, 0.4, 0.8, 1.0}) {
    const auto bytes = compress_for_psi(params, psi).logical_bytes();
    EXPECT_GE(bytes, prev);
    prev = bytes;
  }
  // Dense encoding is 4 bytes/coordinate plus header.
  EXPECT_EQ(compress_for_psi(params, 1.0).logical_bytes(), 8u + 4u * 10000u);
}

TEST(TopKTest, ReconstructionErrorDecreasesWithPsi) {
  std::vector<float> params(5000);
  Rng rng{7};
  for (float& v : params) v = static_cast<float>(rng.normal());
  double prev_err = 1e18;
  for (const double psi : {0.1, 0.3, 0.6, 1.0}) {
    const auto dense = compress_for_psi(params, psi).densify();
    double err = 0.0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      err += std::abs(static_cast<double>(params[i]) - dense[i]);
    }
    EXPECT_LT(err, prev_err) << "psi=" << psi;
    prev_err = err;
  }
  EXPECT_NEAR(prev_err, 0.0, 1e-9);  // psi = 1 is lossless
}

TEST(TopKTest, DensifyRejectsBadIndex) {
  SparseModel m;
  m.dim = 4;
  m.indices = {9};
  m.values = {1.0f};
  EXPECT_THROW(m.densify(), std::out_of_range);
}

TEST(ModelIoTest, SparseModelRoundtrip) {
  std::vector<float> params(257);
  Rng rng{9};
  for (float& v : params) v = static_cast<float>(rng.normal());
  const SparseModel m = compress_for_psi(params, 0.3);
  ByteWriter w;
  write_sparse_model(w, m);
  ByteReader r{w.bytes()};
  const SparseModel back = read_sparse_model(r);
  EXPECT_EQ(back.dim, m.dim);
  EXPECT_EQ(back.dense, m.dense);
  EXPECT_EQ(back.indices, m.indices);
  EXPECT_EQ(back.values, m.values);
}

TEST(ModelIoTest, ParamsRoundtrip) {
  const std::vector<float> params{1.0f, -2.0f, 0.25f};
  ByteWriter w;
  write_params(w, params);
  ByteReader r{w.bytes()};
  EXPECT_EQ(read_params(r), params);
}

class PsiSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(PsiSweepTest, SparseEncodingNeverExceedsDense) {
  std::vector<float> params(4096);
  Rng rng{11};
  for (float& v : params) v = static_cast<float>(rng.normal());
  const auto m = compress_for_psi(params, GetParam());
  EXPECT_LE(m.logical_bytes(), 8u + 4u * params.size());
}

INSTANTIATE_TEST_SUITE_P(Ratios, PsiSweepTest,
                         ::testing::Values(0.0, 0.05, 0.125, 0.25, 0.5, 0.75, 0.99, 1.0));

}  // namespace
}  // namespace lbchat::nn
